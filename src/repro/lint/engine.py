"""Walk files, run the selected rules, apply pragma suppressions.

Two kinds of rules run here: per-file rules (``Rule.check`` against a
:class:`~repro.lint.astutil.FileContext`) and whole-program rules
(``Rule.check_module`` against the :class:`~repro.lint.program.
ProgramIndex`, built once per run from per-file summaries).

``lint_paths`` supports an **incremental** mode (``changed_only=True``
plus a cache path): per-file summaries and findings persist in an
on-disk cache keyed by content hash (:mod:`repro.lint.cache`).  A warm
run re-parses only *dirty* files (content changed or uncached), uses
cached summaries for the rest, rebuilds the cheap program index, and
re-runs rules on the dirty files **plus their reverse-dependency
cone** — every file whose interprocedural findings could read a dirty
file through the import or call graph.  Everything else replays its
cached findings verbatim.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import time
import typing

from repro.lint import astutil, program as program_mod
from repro.lint.cache import CacheStats, LintCache, config_cache_key
from repro.lint.config import LintConfig, path_matches_any
from repro.lint.findings import Finding
from repro.lint.pragmas import PragmaIndex
from repro.lint.registry import Rule, all_rules, get_rule


@dataclasses.dataclass
class FileResult:
    """Per-file outcome."""

    path: str
    findings: typing.List[Finding] = dataclasses.field(default_factory=list)
    suppressed: int = 0
    skipped: bool = False
    error: typing.Optional[str] = None
    suppressed_by_rule: typing.Dict[str, int] = \
        dataclasses.field(default_factory=dict)
    warnings: typing.List[str] = dataclasses.field(default_factory=list)
    reused: bool = False          # replayed from the incremental cache


@dataclasses.dataclass
class LintRun:
    """Aggregate outcome of one lint invocation."""

    files: typing.List[FileResult] = dataclasses.field(default_factory=list)
    #: rule name (or "program-index") -> seconds spent this run.
    timing: typing.Dict[str, float] = \
        dataclasses.field(default_factory=dict)
    #: set on incremental (``--changed``) runs.
    cache_stats: typing.Optional[CacheStats] = None

    @property
    def findings(self) -> typing.List[Finding]:
        out: typing.List[Finding] = []
        for result in self.files:
            out.extend(result.findings)
        return sorted(out, key=Finding.sort_key)

    @property
    def errors(self) -> typing.List[FileResult]:
        return [r for r in self.files if r.error]

    @property
    def suppressed(self) -> int:
        return sum(r.suppressed for r in self.files)

    @property
    def files_checked(self) -> int:
        return sum(1 for r in self.files if not r.skipped and not r.error)

    def counts_by_rule(self) -> typing.Dict[str, int]:
        counts: typing.Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def suppressed_by_rule(self) -> typing.Dict[str, int]:
        counts: typing.Dict[str, int] = {}
        for result in self.files:
            for rule, count in result.suppressed_by_rule.items():
                counts[rule] = counts.get(rule, 0) + count
        return counts

    @property
    def warnings(self) -> typing.List[typing.Tuple[str, str]]:
        out = []
        for result in self.files:
            for message in result.warnings:
                out.append((result.path, message))
        return out

    def find(self, finding_id: str) -> typing.Optional[Finding]:
        """The finding whose id starts with ``finding_id`` (for
        ``--why``); ambiguous prefixes return the first in sort order."""
        for finding in self.findings:
            if finding.finding_id().startswith(finding_id):
                return finding
        return None


def build_rules(config: LintConfig,
                select: typing.Optional[typing.Sequence[str]] = None
                ) -> typing.List[Rule]:
    """Instantiate the selected rules with their config options."""
    names = list(select) if select else list(config.select)
    registered = all_rules()
    rules = []
    for name in names:
        if name not in registered:
            get_rule(name)                # raises with the known-rule list
        rules.append(registered[name](config.options(name)))
    return rules


def _hot_functions(config: LintConfig) -> typing.List[str]:
    options = config.options("hot-path")
    value = options.get("functions", [])
    if isinstance(value, str):
        return [value]
    return [str(item) for item in value]


def _unknown_pragma_warnings(pragmas: PragmaIndex) -> typing.List[str]:
    known = set(all_rules())
    out = []
    for lineno, rule in pragmas.declared:
        if rule != "*" and rule not in known:
            out.append(f"pragma names unknown rule '{rule}' "
                       f"(line {lineno}); it suppresses nothing")
    return out


def _apply_rule_findings(result: FileResult, pragmas: PragmaIndex,
                         findings: typing.Iterable[Finding]) -> None:
    for finding in findings:
        if pragmas.suppresses(finding.rule, finding.line,
                              finding.end_line):
            result.suppressed += 1
            result.suppressed_by_rule[finding.rule] = \
                result.suppressed_by_rule.get(finding.rule, 0) + 1
        else:
            result.findings.append(finding)


def lint_source(source: str, relpath: str, config: LintConfig,
                select: typing.Optional[typing.Sequence[str]] = None,
                ) -> FileResult:
    """Lint one in-memory source blob (the test/corpus entry point).

    Whole-program rules see a single-module program — their intra-file
    behaviour (and the corpus) works here; cross-module edges need
    :func:`lint_paths`.
    """
    result = FileResult(path=relpath.replace(os.sep, "/"))
    pragmas = PragmaIndex(source)
    if pragmas.skip_file:
        result.skipped = True
        return result
    result.warnings = _unknown_pragma_warnings(pragmas)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        result.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return result
    ctx = astutil.FileContext(tree, relpath,
                              hot_functions=_hot_functions(config))
    rules = build_rules(config, select)
    file_rules = [r for r in rules if not r.requires_program]
    program_rules = [r for r in rules if r.requires_program]
    for rule in file_rules:
        _apply_rule_findings(result, pragmas, rule.check(ctx))
    if program_rules:
        digest = program_mod.file_digest(source.encode("utf-8"))
        summary = program_mod.extract_summary(ctx, digest, config)
        index = program_mod.ProgramIndex([summary])
        for rule in program_rules:
            _apply_rule_findings(result, pragmas,
                                 rule.check_module(index, summary))
    result.findings.sort(key=Finding.sort_key)
    return result


def lint_file(path: str, config: LintConfig,
              select: typing.Optional[typing.Sequence[str]] = None
              ) -> FileResult:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return FileResult(path=path.replace(os.sep, "/"),
                          error=f"cannot read: {exc.strerror}")
    return lint_source(source, _display_path(path), config, select)


@dataclasses.dataclass
class _FileState:
    """One collected file moving through the incremental pipeline."""

    path: str
    display: str
    source: typing.Optional[str] = None
    digest: str = ""
    result: typing.Optional[FileResult] = None   # terminal (error/skip)
    summary: typing.Optional[program_mod.ModuleSummary] = None
    ctx: typing.Optional[astutil.FileContext] = None
    pragmas: typing.Optional[PragmaIndex] = None
    cached: typing.Optional[typing.Dict[str, object]] = None
    dirty: bool = True


def lint_paths(paths: typing.Sequence[str], config: LintConfig,
               select: typing.Optional[typing.Sequence[str]] = None,
               changed_only: bool = False,
               cache_path: typing.Optional[str] = None) -> LintRun:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    With ``cache_path`` set, per-file summaries and findings persist
    across runs; ``changed_only`` additionally *uses* the cache to
    re-analyse only dirty files plus their reverse-dependency cone
    (see the module docstring).  A full run always re-analyses
    everything and rewrites the cache.
    """
    run = LintRun()
    rules = build_rules(config, select)
    file_rules = [r for r in rules if not r.requires_program]
    program_rules = [r for r in rules if r.requires_program]
    hot = _hot_functions(config)
    need_summaries = bool(program_rules) or cache_path is not None

    cache = None
    if cache_path is not None:
        cache = LintCache.load(cache_path,
                               config_cache_key(config, [r.name for
                                                         r in rules]))

    states: typing.List[_FileState] = []
    for path in _collect(paths, config):
        state = _FileState(path=path, display=_display_path(path))
        states.append(state)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            state.result = FileResult(
                path=state.display,
                error=f"cannot read: {exc.strerror}")
            continue
        state.digest = program_mod.file_digest(raw)
        try:
            state.source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            state.result = FileResult(
                path=state.display,
                error=f"cannot decode: {exc.reason}")
            continue
        if changed_only and cache is not None:
            state.cached = cache.fresh_entry(state.display, state.digest)
            if state.cached is not None:
                state.dirty = False
                state.summary = LintCache.summary_of(state.cached)
                continue
        _parse_state(state, config, hot,
                     need_summary=need_summaries)

    index = None
    started = time.monotonic()
    if program_rules or (changed_only and cache is not None):
        index = program_mod.ProgramIndex(
            [s.summary for s in states if s.summary is not None])
        run.timing["program-index"] = time.monotonic() - started

    if changed_only and cache is not None:
        stats = CacheStats()
        stats.total = len(states)
        dirty_paths = {s.display for s in states if s.dirty}
        stats.dirty = len(dirty_paths)
        cone = index.reverse_cone(dirty_paths) - dirty_paths \
            if index is not None else set()
        stats.cone = len(cone)
        need_run = dirty_paths | cone
        stats.analysed = len(need_run)
        stats.reused = stats.total - stats.analysed
        run.cache_stats = stats
    else:
        need_run = {s.display for s in states}

    for state in states:
        if state.result is not None:            # read/skip/syntax error
            run.files.append(state.result)
            if cache is not None and state.result.skipped:
                cache.update(state.display, state.digest, None, (),
                             0, {}, state.result.warnings, skipped=True)
            continue
        if state.display not in need_run and state.cached is not None:
            result = FileResult(
                path=state.display,
                findings=LintCache.findings_of(state.cached),
                suppressed=int(state.cached.get("suppressed", 0)),
                suppressed_by_rule={
                    str(k): int(v) for k, v in
                    dict(state.cached.get("suppressed_by_rule",
                                          {})).items()},
                warnings=[str(w) for w
                          in state.cached.get("warnings", ())],
                skipped=bool(state.cached.get("skipped", False)),
                reused=True)
            run.files.append(result)
            continue
        if state.ctx is None:               # clean file in the cone
            _parse_state(state, config, hot, need_summary=False)
            if state.result is not None:
                run.files.append(state.result)
                continue
        result = FileResult(path=state.display,
                            warnings=_unknown_pragma_warnings(
                                state.pragmas))
        for rule in file_rules:
            rule_started = time.monotonic()
            _apply_rule_findings(result, state.pragmas,
                                 rule.check(state.ctx))
            run.timing[rule.name] = run.timing.get(rule.name, 0.0) \
                + time.monotonic() - rule_started
        if index is not None and state.summary is not None:
            for rule in program_rules:
                rule_started = time.monotonic()
                _apply_rule_findings(
                    result, state.pragmas,
                    rule.check_module(index, state.summary))
                run.timing[rule.name] = \
                    run.timing.get(rule.name, 0.0) \
                    + time.monotonic() - rule_started
        result.findings.sort(key=Finding.sort_key)
        run.files.append(result)
        if cache is not None:
            cache.update(state.display, state.digest, state.summary,
                         result.findings, result.suppressed,
                         result.suppressed_by_rule, result.warnings)

    if cache is not None:
        cache.prune(s.display for s in states)
        cache.save()
    return run


def _parse_state(state: _FileState, config: LintConfig,
                 hot: typing.Sequence[str],
                 need_summary: bool) -> None:
    """Parse one file into ctx/pragmas (and summary when asked);
    terminal outcomes (skip-file, syntax error) land in ``result``."""
    state.dirty = True
    state.pragmas = PragmaIndex(state.source)
    if state.pragmas.skip_file:
        state.result = FileResult(path=state.display, skipped=True)
        return
    try:
        tree = ast.parse(state.source, filename=state.path)
    except SyntaxError as exc:
        state.result = FileResult(
            path=state.display,
            error=f"syntax error: {exc.msg} (line {exc.lineno})")
        return
    state.ctx = astutil.FileContext(tree, state.display,
                                    hot_functions=hot)
    if need_summary and state.summary is None:
        state.summary = program_mod.extract_summary(
            state.ctx, state.digest, config)


def _collect(paths: typing.Sequence[str],
             config: LintConfig) -> typing.List[str]:
    # (path, explicit): a file named on the command line is linted even
    # when config.exclude matches it (the CI self-check relies on this);
    # excludes only prune directory walks.
    files: typing.List[typing.Tuple[str, bool]] = []
    for path in paths:
        if os.path.isfile(path):
            files.append((path, True))
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d != "__pycache__"
                             and not d.startswith("."))
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append((os.path.join(root, name), False))
    seen: typing.Set[str] = set()
    unique = []
    for path, explicit in files:
        display = _display_path(path)
        if display in seen:
            continue
        seen.add(display)
        if not explicit and config.exclude \
                and path_matches_any(display, config.exclude):
            continue
        unique.append(path)
    return unique


def _display_path(path: str) -> str:
    """Relative-to-cwd posix path when possible (stable in reports)."""
    try:
        rel = os.path.relpath(path)
    except ValueError:                      # different drive on Windows
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")
