"""The whole-program index behind the interprocedural lint rules.

``repro.lint`` rules classically see one file at a time; the three
interprocedural rules (``hot-path-transitive``, ``seed-flow``,
``layering``) need the *program*: which module defines which symbol,
who imports whom, and an over-approximate call graph.  This module
builds that index once per run from per-file :class:`ModuleSummary`
records that are

* **pure functions of one file's content** — so the on-disk cache
  (:mod:`repro.lint.cache`) can key them by content hash and a warm
  ``repro lint --changed`` run only re-extracts dirty files, and
* **fully serialisable** — the interprocedural rules run on summaries
  alone, never on a foreign file's AST.

Resolution is deliberately over-approximate (static analysis cannot be
exact about Python): bare names resolve to same-module functions or
imported bindings; ``self.m()`` / ``cls.m()`` resolve to the enclosing
class, else to the *unique* program-wide method of that name;
attribute chains through unknown receivers are dropped.  Import edges
``from pkg import name`` chase one re-export hop through ``pkg``'s own
bindings so they land on the defining submodule, not the package
``__init__``.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import typing

from repro.lint import astutil, hazards

#: Bump when the summary schema changes — invalidates every cache.
SCHEMA_VERSION = 1

#: Constructor terminals that take a seed as their first argument.
SEED_CONSTRUCTORS = {"default_rng", "Random", "RandomState",
                     "SeedSequence", "PCG64", "Philox", "MT19937",
                     "SFC64"}

#: Identifier fragments marking the per-stream index operand of a seed
#: derivation (``seed * K + <id>``).  Exact-match short names plus
#: substring-match long names; override with the seed-flow rule's
#: ``id-names`` option.
ID_NAME_EXACT = frozenset({"i", "j", "k", "idx", "index", "id",
                           "wid", "pid"})
ID_NAME_SUBSTRINGS = ("agent", "worker", "actor", "rank", "slot",
                      "episode", "env", "thread", "proc", "replica",
                      "shard")


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:                                 # pragma: no cover
        return "<expr>"


# -- summary records -------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One import statement (absolute dotted target)."""

    target: str
    names: typing.Tuple[str, ...]     # () for `import target`
    lineno: int
    col: int
    end_lineno: typing.Optional[int]
    lazy: bool                        # inside a function body

    def to_dict(self) -> typing.Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data) -> "ImportEdge":
        return cls(target=str(data["target"]),
                   names=tuple(str(n) for n in data["names"]),
                   lineno=int(data["lineno"]), col=int(data["col"]),
                   end_lineno=(int(data["end_lineno"])
                               if data.get("end_lineno") is not None
                               else None),
                   lazy=bool(data["lazy"]))


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, by raw dotted name.

    ``gated`` means the call itself only executes while obs is enabled
    (it sits inside an obs gate) — everything it reaches is gated by
    construction, so transitive hazard traversal stops there.
    """

    name: str
    lineno: int
    col: int
    end_lineno: typing.Optional[int]
    in_loop: bool
    gated: bool = False

    def to_dict(self) -> typing.Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data) -> "CallSite":
        return cls(name=str(data["name"]), lineno=int(data["lineno"]),
                   col=int(data["col"]),
                   end_lineno=(int(data["end_lineno"])
                               if data.get("end_lineno") is not None
                               else None),
                   in_loop=bool(data["in_loop"]),
                   gated=bool(data.get("gated", False)))


@dataclasses.dataclass(frozen=True)
class SeedSite:
    """One RNG seeding site whose seed expression needs provenance.

    ``kind``: ``adhoc`` (the argument is ad-hoc seed arithmetic),
    ``name-adhoc`` (a local name assigned from ad-hoc arithmetic),
    ``call`` (the seed comes from a function call — resolved against
    the program index at rule time).
    """

    kind: str
    target: str                # the seeding construct (`env.seed`, ...)
    expr: str                  # rendering of the seed expression
    callee: str                # raw callee name for kind == "call"
    lineno: int
    col: int
    end_lineno: typing.Optional[int]
    provenance_line: int = 0   # assignment line for name-adhoc

    def to_dict(self) -> typing.Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data) -> "SeedSite":
        return cls(kind=str(data["kind"]), target=str(data["target"]),
                   expr=str(data["expr"]), callee=str(data["callee"]),
                   lineno=int(data["lineno"]), col=int(data["col"]),
                   end_lineno=(int(data["end_lineno"])
                               if data.get("end_lineno") is not None
                               else None),
                   provenance_line=int(data.get("provenance_line", 0)))


@dataclasses.dataclass
class FunctionSummary:
    """Everything the interprocedural rules need about one function."""

    qualname: str
    lineno: int
    col: int
    end_lineno: typing.Optional[int]
    hot: bool                  # carries the @hot_path decorator
    calls: typing.List[CallSite]
    hazards: typing.List[hazards.Hazard]
    seed_sites: typing.List[SeedSite]
    adhoc_seed_return: bool    # returns `seed <op> ... <op> id` arithmetic
    adhoc_detail: str = ""

    def to_dict(self) -> typing.Dict[str, object]:
        return {"qualname": self.qualname, "lineno": self.lineno,
                "col": self.col, "end_lineno": self.end_lineno,
                "hot": self.hot,
                "calls": [c.to_dict() for c in self.calls],
                "hazards": [h.to_dict() for h in self.hazards],
                "seed_sites": [s.to_dict() for s in self.seed_sites],
                "adhoc_seed_return": self.adhoc_seed_return,
                "adhoc_detail": self.adhoc_detail}

    @classmethod
    def from_dict(cls, data) -> "FunctionSummary":
        return cls(qualname=str(data["qualname"]),
                   lineno=int(data["lineno"]), col=int(data["col"]),
                   end_lineno=(int(data["end_lineno"])
                               if data.get("end_lineno") is not None
                               else None),
                   hot=bool(data["hot"]),
                   calls=[CallSite.from_dict(c) for c in data["calls"]],
                   hazards=[hazards.Hazard.from_dict(h)
                            for h in data["hazards"]],
                   seed_sites=[SeedSite.from_dict(s)
                               for s in data["seed_sites"]],
                   adhoc_seed_return=bool(data["adhoc_seed_return"]),
                   adhoc_detail=str(data.get("adhoc_detail", "")))


@dataclasses.dataclass
class ModuleSummary:
    """The serialisable whole-program view of one file."""

    module: str
    path: str                  # display path (posix, repo-relative)
    digest: str
    is_package: bool           # an __init__.py
    imports: typing.List[ImportEdge]
    bindings: typing.Dict[str, str]     # local name -> dotted target
    classes: typing.Dict[str, typing.List[str]]   # class -> method names
    functions: typing.Dict[str, FunctionSummary]  # by qualname

    def to_dict(self) -> typing.Dict[str, object]:
        return {"module": self.module, "path": self.path,
                "digest": self.digest, "is_package": self.is_package,
                "imports": [e.to_dict() for e in self.imports],
                "bindings": dict(self.bindings),
                "classes": {k: list(v) for k, v in self.classes.items()},
                "functions": {k: f.to_dict()
                              for k, f in self.functions.items()}}

    @classmethod
    def from_dict(cls, data) -> "ModuleSummary":
        return cls(module=str(data["module"]), path=str(data["path"]),
                   digest=str(data["digest"]),
                   is_package=bool(data["is_package"]),
                   imports=[ImportEdge.from_dict(e)
                            for e in data["imports"]],
                   bindings={str(k): str(v)
                             for k, v in data["bindings"].items()},
                   classes={str(k): [str(m) for m in v]
                            for k, v in data["classes"].items()},
                   functions={str(k): FunctionSummary.from_dict(f)
                              for k, f in data["functions"].items()})


# -- extraction ------------------------------------------------------------


def extract_summary(ctx: astutil.FileContext, digest: str,
                    config=None) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed file.

    ``config`` supplies the hot-path method options and seed-flow
    ``id-names`` so the cached summary matches what the rules would
    compute; the cache key includes the config, so option changes
    invalidate stored summaries.
    """
    hot_options = config.options("hot-path") if config else {}
    seed_options = config.options("seed-flow") if config else {}
    shard_methods = set(_as_list(
        hot_options.get("runlog-methods"),
        hazards.RUNLOG_DEFAULT_METHODS))
    latency_methods = set(_as_list(
        hot_options.get("latency-methods"),
        hazards.LATENCY_DEFAULT_METHODS))
    id_names = _as_list(seed_options.get("id-names"), ())

    summary = ModuleSummary(
        module=ctx.module, path=ctx.relpath, digest=digest,
        is_package=ctx.relpath.endswith("__init__.py"),
        imports=[], bindings={}, classes={}, functions={})
    _extract_imports(ctx, summary)
    hot_marked = {id(f) for f in ctx.hot_function_nodes}
    for func in ctx.functions():
        qualname = ctx.qualname(func)
        loops = hazards.loop_nodes(func)
        summary.functions[qualname] = FunctionSummary(
            qualname=qualname, lineno=func.lineno,
            col=func.col_offset, end_lineno=func.end_lineno,
            hot=id(func) in hot_marked,
            calls=_extract_calls(ctx, func, loops),
            hazards=hazards.scan_hazards(ctx, func, shard_methods,
                                         latency_methods),
            seed_sites=_extract_seed_sites(ctx, func, id_names),
            adhoc_seed_return=False)
        detail = _adhoc_return_detail(func, id_names)
        if detail:
            summary.functions[qualname].adhoc_seed_return = True
            summary.functions[qualname].adhoc_detail = detail
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            methods = sorted(
                child.name for child in node.body
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)))
            summary.classes[ctx.qualname(node)] = methods
    return summary


def _as_list(value, default) -> typing.List[str]:
    if value is None:
        return list(default)
    if isinstance(value, str):
        return [value]
    return [str(item) for item in value]


def _extract_imports(ctx: astutil.FileContext,
                     summary: ModuleSummary) -> None:
    package = ctx.module if summary.is_package \
        else ctx.module.rsplit(".", 1)[0] if "." in ctx.module else ""
    for node in ast.walk(ctx.tree):
        lazy = ctx.enclosing_function(node) is not None
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports.append(ImportEdge(
                    target=alias.name, names=(), lineno=node.lineno,
                    col=node.col_offset, end_lineno=node.end_lineno,
                    lazy=lazy))
                bound = alias.asname or alias.name.split(".")[0]
                bound_to = alias.name if alias.asname \
                    else alias.name.split(".")[0]
                summary.bindings.setdefault(bound, bound_to)
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:
                base = package.split(".") if package else []
                drop = node.level - 1
                if drop:
                    base = base[:-drop] if drop <= len(base) else []
                target = ".".join(base + ([node.module]
                                          if node.module else []))
            if not target:
                continue
            names = tuple(alias.name for alias in node.names)
            summary.imports.append(ImportEdge(
                target=target, names=names, lineno=node.lineno,
                col=node.col_offset, end_lineno=node.end_lineno,
                lazy=lazy))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                summary.bindings.setdefault(
                    bound, f"{target}.{alias.name}")


def _extract_calls(ctx: astutil.FileContext,
                   func: astutil.FunctionNode,
                   loops: typing.Set[int]
                   ) -> typing.List[CallSite]:
    """Call sites worth resolving: bare names, ``self./cls.`` methods,
    and names rooted at a local binding or class.  Chains through
    unknown receivers (``self.engine.run()``) are dropped — receiver
    types are beyond a lexical index."""
    sites = []
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue
        if not isinstance(node, ast.Call):
            continue
        name = astutil.dotted(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) > 3:
            continue
        if parts[0] in ("self", "cls") and len(parts) > 2:
            continue
        sites.append(CallSite(
            name=name, lineno=node.lineno, col=node.col_offset,
            end_lineno=node.end_lineno, in_loop=id(node) in loops,
            gated=ctx.is_gated(func, node)))
    return sites


# -- seed-flow extraction --------------------------------------------------


def _ident_terminals(node: ast.AST) -> typing.List[str]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
    return out


def is_adhoc_seed_expr(node: ast.AST,
                       id_names: typing.Sequence[str] = ()) -> bool:
    """Is ``node`` ad-hoc per-stream seed arithmetic?

    True for a ``BinOp`` tree over names/attributes/constants (no
    calls — a call gets the benefit of the doubt) combining a
    seed-ish identifier (mentions ``seed``) with a stream-index
    identifier (``agent_id``, ``worker``, ``index``, ...)."""
    if not isinstance(node, ast.BinOp):
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            return False
    idents = [ident.lower() for ident in _ident_terminals(node)]
    seedish = any("seed" in ident for ident in idents)
    extra_exact = {n for n in id_names if len(n) <= 3}
    extra_sub = tuple(n for n in id_names if len(n) > 3)
    idish = any(
        ident in ID_NAME_EXACT or ident in extra_exact
        or any(tok in ident for tok in ID_NAME_SUBSTRINGS + extra_sub)
        for ident in idents if "seed" not in ident)
    return seedish and idish


def _seed_argument(node: ast.Call) -> typing.Optional[ast.AST]:
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return arg.elt
    return arg


def _is_seeding_call(name: str) -> bool:
    terminal = name.split(".")[-1]
    return terminal == "seed" or terminal in SEED_CONSTRUCTORS


def _extract_seed_sites(ctx: astutil.FileContext,
                        func: astutil.FunctionNode,
                        id_names: typing.Sequence[str]
                        ) -> typing.List[SeedSite]:
    assigns: typing.Dict[str, ast.AST] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
    sites = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.dotted(node.func)
        if name is None or not _is_seeding_call(name):
            continue
        arg = _seed_argument(node)
        if arg is None:
            continue
        if is_adhoc_seed_expr(arg, id_names):
            sites.append(SeedSite(
                kind="adhoc", target=name, expr=_unparse(arg),
                callee="", lineno=node.lineno, col=node.col_offset,
                end_lineno=node.end_lineno))
        elif isinstance(arg, ast.Name) and arg.id in assigns \
                and is_adhoc_seed_expr(assigns[arg.id], id_names):
            source = assigns[arg.id]
            sites.append(SeedSite(
                kind="name-adhoc", target=name,
                expr=f"{arg.id} = {_unparse(source)}", callee="",
                lineno=node.lineno, col=node.col_offset,
                end_lineno=node.end_lineno,
                provenance_line=getattr(source, "lineno", 0)))
        elif isinstance(arg, ast.Call):
            callee = astutil.dotted(arg.func)
            if callee:
                sites.append(SeedSite(
                    kind="call", target=name, expr=_unparse(arg),
                    callee=callee, lineno=node.lineno,
                    col=node.col_offset, end_lineno=node.end_lineno))
    return sites


def _adhoc_return_detail(func: astutil.FunctionNode,
                         id_names: typing.Sequence[str]) -> str:
    """Non-empty description when ``func`` returns ad-hoc seed
    arithmetic (it mints a parallel seed-derivation contract)."""
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue
        if isinstance(node, ast.Return) and node.value is not None \
                and is_adhoc_seed_expr(node.value, id_names):
            return _unparse(node.value)
    return ""


# -- the index -------------------------------------------------------------


class ProgramIndex:
    """Symbol table + import graph + call graph over module summaries."""

    def __init__(self, summaries: typing.Sequence[ModuleSummary]):
        self.modules: typing.Dict[str, ModuleSummary] = {}
        self.by_path: typing.Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self.by_path[summary.path] = summary
        # full dotted function name -> (module, qualname)
        self._functions: typing.Dict[str,
                                     typing.Tuple[str, str]] = {}
        self._methods: typing.Dict[str, typing.List[str]] = {}
        for summary in self.modules.values():
            for qualname in summary.functions:
                full = f"{summary.module}.{qualname}"
                self._functions[full] = (summary.module, qualname)
                terminal = qualname.rsplit(".", 1)[-1]
                if "." in qualname:             # a method
                    self._methods.setdefault(terminal, []).append(full)
        self._module_graph: typing.Optional[
            typing.Dict[str, typing.Set[str]]] = None
        self._dep_paths: typing.Optional[
            typing.Dict[str, typing.Set[str]]] = None

    # -- symbols -----------------------------------------------------------

    def function(self, full_name: str
                 ) -> typing.Optional[FunctionSummary]:
        loc = self._functions.get(full_name)
        if loc is None:
            return None
        module, qualname = loc
        return self.modules[module].functions[qualname]

    def function_path(self, full_name: str) -> typing.Optional[str]:
        loc = self._functions.get(full_name)
        return self.modules[loc[0]].path if loc else None

    def function_module(self, full_name: str) -> typing.Optional[str]:
        loc = self._functions.get(full_name)
        return loc[0] if loc else None

    def is_hot(self, full_name: str,
               configured: typing.Container[str] = ()) -> bool:
        summary = self.function(full_name)
        if summary is None:
            return False
        return summary.hot or full_name in configured

    # -- name resolution ---------------------------------------------------

    def resolve_name(self, module: str, raw: str,
                     _depth: int = 0) -> typing.Optional[str]:
        """Resolve a dotted name used inside ``module`` to a program
        function's full name, chasing at most three re-export hops."""
        if _depth > 3:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        parts = raw.split(".")
        # Bare name: same-module function, else an imported binding.
        if len(parts) == 1:
            if raw in summary.functions:
                return f"{module}.{raw}"
            bound = summary.bindings.get(raw)
            if bound:
                return self._resolve_absolute(bound, _depth)
            return None
        # ClassName.method within this module.
        if parts[0] in summary.classes and len(parts) == 2:
            qualname = ".".join(parts)
            if qualname in summary.functions:
                return f"{module}.{qualname}"
            return None
        bound = summary.bindings.get(parts[0])
        if bound:
            return self._resolve_absolute(
                ".".join([bound] + parts[1:]), _depth)
        return None

    def _resolve_absolute(self, dotted: str,
                          depth: int) -> typing.Optional[str]:
        if dotted in self._functions:
            return dotted
        # Longest in-index module prefix, then resolve the remainder
        # inside it (covers package-__init__ re-exports).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = ".".join(parts[cut:])
                return self.resolve_name(prefix, rest, depth + 1)
        return None

    def resolve_call(self, module: str, caller_qualname: str,
                     site: CallSite) -> typing.List[str]:
        """Candidate full names for one call site (possibly empty)."""
        parts = site.name.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            method = parts[1]
            if "." in caller_qualname:
                cls_qual = caller_qualname.rsplit(".", 1)[0]
                candidate = f"{module}.{cls_qual}.{method}"
                if candidate in self._functions:
                    return [candidate]
            matches = self._methods.get(method, [])
            return list(matches) if len(matches) == 1 else []
        resolved = self.resolve_name(module, site.name)
        return [resolved] if resolved else []

    # -- import graph ------------------------------------------------------

    def resolve_import(self, edge: ImportEdge
                       ) -> typing.List[str]:
        """In-index module names one import statement reaches.

        ``from pkg import name`` prefers the submodule ``pkg.name``;
        a plain symbol chases one re-export hop through ``pkg``'s
        bindings so the edge lands on the defining submodule."""
        out: typing.Set[str] = set()
        if not edge.names:                        # import a.b.c
            target = self._nearest_module(edge.target)
            if target:
                out.add(target)
        else:
            for name in edge.names:
                if name == "*":
                    target = self._nearest_module(edge.target)
                    if target:
                        out.add(target)
                    continue
                sub = f"{edge.target}.{name}"
                if sub in self.modules:
                    out.add(sub)
                    continue
                pkg = self.modules.get(edge.target)
                if pkg is not None:
                    bound = pkg.bindings.get(name)
                    if bound:
                        near = self._nearest_module(bound)
                        if near:
                            out.add(near)
                            continue
                target = self._nearest_module(edge.target)
                if target:
                    out.add(target)
        return sorted(out)

    def _nearest_module(self, dotted: str) -> typing.Optional[str]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix
        return None

    def module_graph(self, include_lazy: bool = False
                     ) -> typing.Dict[str, typing.Set[str]]:
        """Module-level import edges resolved within the index."""
        if not include_lazy and self._module_graph is not None:
            return self._module_graph
        graph: typing.Dict[str, typing.Set[str]] = {
            name: set() for name in self.modules}
        for name, summary in self.modules.items():
            for edge in summary.imports:
                if edge.lazy and not include_lazy:
                    continue
                for target in self.resolve_import(edge):
                    if target != name:
                        graph[name].add(target)
        if not include_lazy:
            self._module_graph = graph
        return graph

    # -- dependency cones (for incremental runs) ---------------------------

    def dependency_paths(self) -> typing.Dict[str, typing.Set[str]]:
        """path -> paths it depends on (imports, lazy imports, and
        resolved call targets) — the cone a file's interprocedural
        findings can read from."""
        if self._dep_paths is not None:
            return self._dep_paths
        deps: typing.Dict[str, typing.Set[str]] = {
            summary.path: set() for summary in self.modules.values()}
        for name, summary in self.modules.items():
            mods: typing.Set[str] = set()
            for edge in summary.imports:
                mods.update(self.resolve_import(edge))
            for func in summary.functions.values():
                for site in func.calls:
                    for full in self.resolve_call(name, func.qualname,
                                                  site):
                        mods.add(self._functions[full][0])
            mods.discard(name)
            deps[summary.path] = {self.modules[m].path for m in mods}
        self._dep_paths = deps
        return deps

    def reverse_cone(self, dirty_paths: typing.Iterable[str]
                     ) -> typing.Set[str]:
        """Every file whose analysis could read a dirty file: the
        transitive reverse-dependency closure (dirty files excluded
        unless depended upon)."""
        deps = self.dependency_paths()
        reverse: typing.Dict[str, typing.Set[str]] = {
            path: set() for path in deps}
        for path, targets in deps.items():
            for target in targets:
                if target in reverse:
                    reverse[target].add(path)
        seen: typing.Set[str] = set()
        frontier = [p for p in dirty_paths if p in reverse]
        while frontier:
            current = frontier.pop()
            for dependent in reverse.get(current, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)
        return seen

    # -- cycles ------------------------------------------------------------

    def import_cycles(self) -> typing.List[typing.List[str]]:
        """Module-level import cycles that cross a package boundary.

        Cycles fully contained in one package (``__init__`` re-export
        knots) are the package's own business and are not reported.
        Returns one shortest representative cycle per strongly
        connected component, as a module-name path ``[a, b, ..., a]``.
        """
        graph = self.module_graph()
        cycles = []
        for component in _sccs(graph):
            if len(component) < 2:
                member = next(iter(component))
                if member not in graph.get(member, ()):
                    continue
                component = {member}
            packages = {self._package_of(m) for m in component}
            if len(packages) < 2 and len(component) > 1:
                continue
            if len(component) == 1:
                member = next(iter(component))
                cycles.append([member, member])
                continue
            start = min(component)
            path = _shortest_cycle(graph, start, component)
            if path:
                cycles.append(path)
        cycles.sort()
        return cycles

    def _package_of(self, module: str) -> str:
        """The package a module belongs to — for an ``__init__`` module
        that is the module itself, not its parent."""
        summary = self.modules.get(module)
        if summary is not None and summary.is_package:
            return module
        return module.rsplit(".", 1)[0] if "." in module else module


def _sccs(graph: typing.Dict[str, typing.Set[str]]
          ) -> typing.List[typing.Set[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index: typing.Dict[str, int] = {}
    low: typing.Dict[str, int] = {}
    on_stack: typing.Set[str] = set()
    stack: typing.List[str] = []
    out: typing.List[typing.Set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in graph:
                    continue
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child,
                                 iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                out.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return out


def _shortest_cycle(graph: typing.Dict[str, typing.Set[str]],
                    start: str, component: typing.Set[str]
                    ) -> typing.Optional[typing.List[str]]:
    """Shortest ``start -> ... -> start`` path inside one SCC."""
    parents: typing.Dict[str, str] = {}
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for child in sorted(graph.get(node, ())):
                if child not in component:
                    continue
                if child == start:
                    path = [start]
                    current = node
                    while current != start:
                        path.append(current)
                        current = parents[current]
                    path.append(start)
                    path[1:-1] = path[1:-1][::-1]
                    return path
                if child not in parents:
                    parents[child] = node
                    next_frontier.append(child)
        frontier = next_frontier
    return None
