"""Invariant-aware static analysis for the FA3C reproduction.

``repro.lint`` is a small AST-walking lint framework whose rules encode
the *repo-specific* invariants the test suite can only check on executed
paths: deterministic simulation (no wall clock, no unseeded RNG, no set
iteration in cycle accounting), hot-path hygiene (no allocation or
telemetry work outside the ``REPRO_OBS`` gate in ``@hot_path``
functions), the seqlock/Hogwild protocol around
:class:`repro.core.shared_params.SharedParameterStore`, fp32 reduction
order in the bit-exact modules, and cycle-attribution coverage.

Generic style is ruff's job (see ``[tool.ruff]`` in ``pyproject.toml``);
this package stays invariant-only.

Entry points:

* ``repro lint [paths] --strict --select rule --format json`` (CLI)
* :func:`lint_paths` / :func:`lint_source` (library / tests)

See ``docs/static-analysis.md`` for the rule reference, the pragma
syntax (``repro-lint: ok[rule]`` comments), and how to add a rule.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import FileResult, LintRun, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register

# Importing the rules package registers the built-in rules.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "FileResult",
    "LintConfig",
    "LintRun",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
