"""Pragma comments: ``# repro-lint: ok[rule]`` and friends.

Three forms, all case-sensitive:

* ``# repro-lint: ok[rule1,rule2]`` — trailing on a line of code:
  suppress those rules for any finding anchored to that line (a finding
  spanning several lines is suppressed by a pragma on *any* of them).
  On a comment-only line — or a decorator line, where a trailing
  comment would otherwise govern only the ``@`` line itself — the
  pragma applies to the next code line instead (skipping further
  comment/decorator lines), so it can suppress a finding anchored to
  the decorated ``def``.
* ``# repro-lint: file-ok[rule1,rule2]`` — anywhere in the file:
  suppress those rules for the whole file.
* ``# repro-lint: skip-file`` — do not lint this file at all.

Free-form prose after the bracket is encouraged — a pragma should say
*why* the invariant does not apply::

    np.copyto(self.theta_flat(), template.flatten()) \
        # repro-lint: ok[seqlock] store not shared yet

``ok[*]`` suppresses every rule on that line.  Rule names in brackets
are validated against the registry after the run: an unknown name
(a typo'd pragma silently suppressing nothing) is reported as a
warning, never silently accepted.
"""

from __future__ import annotations

import re
import typing

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(skip-file|(file-ok|ok)"
                     r"\[([^\]]*)\])")

ALL_RULES = "*"


class PragmaIndex:
    """Per-file suppression lookup built from the raw source text."""

    def __init__(self, source: str):
        self.skip_file = False
        self.file_rules: typing.Set[str] = set()
        self.line_rules: typing.Dict[int, typing.Set[str]] = {}
        #: every ``(line, rule)`` named in a pragma, for validation.
        self.declared: typing.List[typing.Tuple[int, str]] = []
        self._scan(source)

    def _scan(self, source: str) -> None:
        lines = source.splitlines()
        for lineno, line in enumerate(lines, start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            if match.group(1) == "skip-file":
                self.skip_file = True
                continue
            rules = {part.strip() for part
                     in match.group(3).split(",") if part.strip()}
            for rule in sorted(rules):
                self.declared.append((lineno, rule))
            if match.group(2) == "file-ok":
                self.file_rules |= rules
                continue
            # A pragma on a comment-only or decorator line governs the
            # next code line (skipping further comment/decorator lines,
            # so it reaches past a decorator stack to the `def`).
            target = lineno
            if line.strip().startswith(("#", "@")):
                target = lineno + 1
                while target <= len(lines) and \
                        lines[target - 1].strip().startswith(("#", "@")):
                    target += 1
            self.line_rules.setdefault(target, set()).update(rules)

    def rule_names(self) -> typing.Set[str]:
        """Every rule name any pragma in this file refers to."""
        return {rule for _, rule in self.declared}

    def suppresses(self, rule: str, line: int,
                   end_line: typing.Optional[int] = None) -> bool:
        """Is ``rule`` suppressed anywhere in ``line..end_line``?"""
        if self.skip_file:
            return True
        if rule in self.file_rules or ALL_RULES in self.file_rules:
            return True
        last = end_line if end_line and end_line >= line else line
        for candidate in range(line, last + 1):
            rules = self.line_rules.get(candidate)
            if rules and (rule in rules or ALL_RULES in rules):
                return True
        return False
