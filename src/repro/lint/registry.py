"""The rule registry.

A rule is a class with a unique ``name``, a one-line ``description``,
and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding`.  Register with::

    from repro.lint.registry import Rule, register

    @register
    class MyRule(Rule):
        name = "my-rule"
        description = "what invariant this protects"

        def check(self, ctx):
            ...
            yield ctx.finding(self, node, "message")

Rules receive their ``[tool.repro-lint.<name>]`` options dict as
``self.options``.  ``ctx`` is a
:class:`~repro.lint.astutil.FileContext`.
"""

from __future__ import annotations

import typing

from repro.lint.findings import Finding


class Rule:
    """Base class; subclasses override :attr:`name` and :meth:`check`.

    Interprocedural rules set :attr:`requires_program` and override
    :meth:`check_module` instead: they run once per module against the
    whole-program index (:class:`repro.lint.program.ProgramIndex`) and
    must anchor every finding in *that* module, so incremental runs can
    cache findings per file.
    """

    name: str = ""
    description: str = ""
    #: True for whole-program rules (they implement check_module).
    requires_program: bool = False

    def __init__(self, options: typing.Optional[typing.Dict[str, object]]
                 = None):
        self.options = options or {}

    def list_option(self, key: str,
                    default: typing.Sequence[str] = ()
                    ) -> typing.List[str]:
        value = self.options.get(key)
        if value is None:
            return list(default)
        if isinstance(value, str):
            return [value]
        return [str(item) for item in value]

    def check(self, ctx) -> typing.Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def check_module(self, program, summary
                     ) -> typing.Iterator[Finding]:
        """Whole-program pass for one module (``requires_program``
        rules only).  Findings must be anchored in ``summary.path``."""
        raise NotImplementedError
        yield  # pragma: no cover


_RULES: typing.Dict[str, typing.Type[Rule]] = {}


def register(rule_class: typing.Type[Rule]) -> typing.Type[Rule]:
    """Class decorator adding a rule to the registry."""
    if not rule_class.name:
        raise ValueError(f"rule {rule_class.__name__} has no name")
    if _RULES.get(rule_class.name) not in (None, rule_class):
        raise ValueError(f"duplicate rule name {rule_class.name!r}")
    _RULES[rule_class.name] = rule_class
    return rule_class


def all_rules() -> typing.Dict[str, typing.Type[Rule]]:
    """Name -> class for every registered rule (sorted by name)."""
    return {name: _RULES[name] for name in sorted(_RULES)}


def get_rule(name: str) -> typing.Type[Rule]:
    try:
        return _RULES[name]
    except KeyError:
        known = ", ".join(sorted(_RULES)) or "(none)"
        raise KeyError(f"unknown lint rule {name!r}; known: {known}") \
            from None
