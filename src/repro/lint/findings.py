"""The finding record every rule emits."""

from __future__ import annotations

import dataclasses
import hashlib
import typing


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``end_line`` are 1-based; ``col`` is 0-based (as in
    :mod:`ast`).  ``end_line`` lets the pragma matcher accept a
    suppression on any line of a multi-line statement.

    ``chain`` carries the call/import path justifying an
    *interprocedural* finding — one human-readable hop per entry,
    first entry at the anchor, last at the hazard.  ``repro lint --why
    <id>`` prints it; :meth:`finding_id` is the stable-within-a-run
    identifier the flag takes.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: typing.Optional[int] = None
    chain: typing.Tuple[str, ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def finding_id(self) -> str:
        """Short content hash: stable across runs while the finding
        (rule, location, message) is unchanged."""
        blob = f"{self.rule}|{self.path}|{self.line}|{self.col}|" \
               f"{self.message}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]

    def as_dict(self) -> typing.Dict[str, object]:
        out: typing.Dict[str, object] = {
            "id": self.finding_id(), "rule": self.rule,
            "path": self.path, "line": self.line, "col": self.col,
            "message": self.message}
        if self.chain:
            out["chain"] = list(self.chain)
        return out

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "Finding":
        return cls(rule=str(data["rule"]), path=str(data["path"]),
                   line=int(data["line"]), col=int(data["col"]),
                   message=str(data["message"]),
                   end_line=(int(data["end_line"])
                             if data.get("end_line") is not None else None),
                   chain=tuple(str(hop)
                               for hop in data.get("chain", ())))

    def cache_dict(self) -> typing.Dict[str, object]:
        """Round-trippable form (``as_dict`` plus ``end_line``)."""
        out = self.as_dict()
        out["end_line"] = self.end_line
        return out

    def sort_key(self) -> typing.Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
