"""The finding record every rule emits."""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``end_line`` are 1-based; ``col`` is 0-based (as in
    :mod:`ast`).  ``end_line`` lets the pragma matcher accept a
    suppression on any line of a multi-line statement.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: typing.Optional[int] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> typing.Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def sort_key(self) -> typing.Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
