"""Rule ``determinism``: keep the simulators replayable.

Three checks:

* **Unseeded RNG** (everywhere): calls through the module-level
  ``random.*`` or ``np.random.*`` state.  All randomness must flow
  through an explicitly seeded ``np.random.Generator`` /
  ``random.Random`` instance (``np.random.default_rng(seed)``) so runs
  and the perf gate are reproducible.
* **Wall-clock reads** (in ``wallclock-modules``, default
  ``repro/sim`` + ``repro/fpga`` + ``repro/gpu``): ``time.time()``,
  ``time.perf_counter()``, ``datetime.now()`` and friends.  Simulated
  time is the only clock inside the simulators; host-time telemetry
  belongs to the trainer/obs layers.
* **Set iteration** (in ``cycle-modules``): ``for ... in {...}`` /
  ``set(...)`` — set order is hash-randomised across processes, and the
  cycle-attribution invariant (buckets sum to total, bit-exact) depends
  on a stable accumulation order.
"""

from __future__ import annotations

import ast
import typing

from repro.lint import astutil
from repro.lint.config import path_matches_any
from repro.lint.registry import Rule, register

#: np.random.* constructors that *return seeded generators* are fine.
_NP_RANDOM_OK = {"default_rng", "Generator", "RandomState", "SeedSequence",
                 "PCG64", "MT19937", "Philox", "SFC64", "BitGenerator"}

#: random module members that do not touch the global RNG state.
_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

_WALLCLOCK_TIME = {"time", "time_ns", "monotonic", "monotonic_ns",
                   "perf_counter", "perf_counter_ns", "localtime",
                   "gmtime", "ctime"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

_DEFAULT_WALLCLOCK_MODULES = ("repro/sim", "repro/fpga", "repro/gpu")
_DEFAULT_CYCLE_MODULES = ("repro/obs/prof", "repro/fpga", "repro/gpu")


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = ("no unseeded global RNG, no wall clock in simulators, "
                   "no set iteration in cycle accounting")

    def check(self, ctx: astutil.FileContext):
        wallclock_here = path_matches_any(
            ctx.relpath, self.list_option("wallclock-modules",
                                          _DEFAULT_WALLCLOCK_MODULES))
        cycle_here = path_matches_any(
            ctx.relpath, self.list_option("cycle-modules",
                                          _DEFAULT_CYCLE_MODULES))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_rng(ctx, node)
                if wallclock_here:
                    yield from self._check_wallclock(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)) \
                    and cycle_here:
                yield from self._check_set_iteration(ctx, node)

    def _check_rng(self, ctx: astutil.FileContext, node: ast.Call):
        name = astutil.dotted(node.func)
        if not name:
            return
        parts = name.split(".")
        if parts[0] in ctx.random_aliases and len(parts) == 2 \
                and parts[1] not in _RANDOM_OK:
            yield ctx.finding(
                self, node,
                f"call to module-level `{name}()` uses the unseeded "
                "global RNG; pass a seeded `random.Random` instance "
                "instead")
            return
        if len(parts) >= 3 and parts[0] in ctx.numpy_aliases \
                and parts[1] == "random" \
                and parts[2] not in _NP_RANDOM_OK:
            yield ctx.finding(
                self, node,
                f"call to `{name}()` uses numpy's unseeded global RNG; "
                "thread a seeded `np.random.Generator` "
                "(`np.random.default_rng(seed)`) through instead")

    def _check_wallclock(self, ctx: astutil.FileContext, node: ast.Call):
        name = astutil.dotted(node.func)
        if not name:
            return
        parts = name.split(".")
        if parts[0] in ctx.time_aliases and len(parts) == 2 \
                and parts[1] in _WALLCLOCK_TIME:
            yield ctx.finding(
                self, node,
                f"wall-clock read `{name}()` inside a simulator module; "
                "simulators must use simulated time (host-time telemetry "
                "belongs in the trainer/obs layers)")
        elif parts[0] in ctx.datetime_aliases \
                and parts[-1] in _WALLCLOCK_DATETIME:
            yield ctx.finding(
                self, node,
                f"wall-clock read `{name}()` inside a simulator module")

    def _check_set_iteration(self, ctx: astutil.FileContext,
                             node: typing.Union[ast.For,
                                                ast.comprehension]):
        iterable = node.iter
        flagged = None
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            flagged = "a set literal"
        elif isinstance(iterable, ast.Call) \
                and astutil.dotted(iterable.func) == "set":
            flagged = "`set(...)`"
        if flagged:
            anchor = iterable if isinstance(node, ast.comprehension) \
                else node
            yield ctx.finding(
                self, anchor,
                f"iteration over {flagged} in cycle-accounting code; "
                "set order is hash-randomised — iterate a sorted() or "
                "list/tuple/dict form so attribution order is stable")
