"""Rule ``hot-path``: zero-overhead discipline in marked functions.

Applies to functions carrying the :func:`repro.perf.hot_path` decorator
or listed (dotted names) in the ``functions`` option.  Mark *leaf* inner
functions (one PE reduction, one DRAM transfer, one parameter sync) —
not orchestration loops, whose functional timing would false-positive.

Inside a hot function, everything that exists only for telemetry or
debugging must sit behind the ``REPRO_OBS`` gate (``if
_obs.enabled():`` block, ``x if _obs.enabled() else y`` ternary, a
local ``observing = _obs.enabled()`` alias, or the early-return guard
``if not _obs.enabled(): ...; return``):

* **obs calls** — ``_obs.metrics()`` / ``_obs.tracer()`` chains.
  (``_obs.enabled()`` is the gate itself; ``_obs.span(...)`` used
  directly as a ``with`` context is self-gating — it returns a shared
  no-op manager while disabled — and is exempt.)
* **wall-clock reads** — ``time.perf_counter()`` etc. exist only to
  feed telemetry in a leaf hot function; hoist them behind the gate
  (``started = time.perf_counter() if _obs.enabled() else 0.0``).
* **string construction** — f-strings, ``str.format``, ``print`` /
  ``logging`` calls.  Error paths are cold: anything inside a ``raise``
  statement is exempt.
* **allocation in loops** — calls that allocate per iteration inside a
  ``for``/``while`` (``np.zeros``/``np.empty``/``np.array``/
  ``np.concatenate``/..., ``list()``/``dict()``/``set()``, ``.copy()``/
  ``.astype()``/``.tolist()``, and comprehensions).  Hoist the buffer
  out of the loop and fill it in place (``np.copyto``, ``out=``).
  Bare ``[]``/``{}`` literals are exempt — resetting a handed-off list
  is idiomatic and cheap next to building its contents.
* **run-log shard writes** — anything rooted at
  :mod:`repro.obs.runlog`, and ``flush`` / ``heartbeat`` /
  ``maybe_heartbeat`` calls (the ``runlog-methods`` option) on objects
  whose name mentions ``shard`` or ``runlog``.  Shard flushes serialise
  a full registry snapshot to disk — strictly gated territory.  The
  name heuristic keeps unrelated ``stream.flush()`` calls out of scope.
* **latency recorders** — anything rooted at :mod:`repro.obs.lat`,
  and ``add_ns`` / ``finish`` calls (the ``latency-methods`` option)
  on objects whose name mentions ``lat``.  The sanctioned idiom is the
  sentinel: ``lat = _lat.RoutineLatency(...) if _obs.enabled() else
  None`` then ``if lat is not None: lat.add_ns(...)`` — the gate
  analysis treats the ``is not None`` check as REPRO_OBS-gated.
"""

from __future__ import annotations

import ast
import typing

from repro.lint import astutil
from repro.lint.registry import Rule, register

_ALLOC_NP = {"zeros", "ones", "empty", "full", "array", "arange",
             "concatenate", "stack", "vstack", "hstack", "tile",
             "repeat", "copy", "zeros_like", "ones_like", "empty_like",
             "full_like"}
_ALLOC_BUILTINS = {"list", "dict", "set", "tuple", "bytearray"}
_ALLOC_METHODS = {"copy", "astype", "tolist", "flatten", "ravel"}
_STRING_BUILDERS = {"print"}
_WALLCLOCK = {"time", "time_ns", "monotonic", "monotonic_ns",
              "perf_counter", "perf_counter_ns"}
_COMPREHENSIONS = (ast.ListComp, ast.DictComp, ast.SetComp,
                   ast.GeneratorExp)
_RUNLOG_DEFAULT_METHODS = ("flush", "heartbeat", "maybe_heartbeat")
# "measure" is deliberately absent: the receiver-mentions-"lat"
# heuristic would catch `platform.measure(...)` ("platform" contains
# "lat"), which is a throughput run, not a latency recorder.
_LATENCY_DEFAULT_METHODS = ("add_ns", "finish")


@register
class HotPathRule(Rule):
    name = "hot-path"
    description = ("telemetry, string building, wall-clock reads, "
                   "runlog shard writes, and per-iteration allocation "
                   "in @hot_path functions must be behind the "
                   "REPRO_OBS gate")

    def __init__(self, options=None):
        super().__init__(options)
        self._shard_methods = set(self.list_option(
            "runlog-methods", _RUNLOG_DEFAULT_METHODS))
        self._latency_methods = set(self.list_option(
            "latency-methods", _LATENCY_DEFAULT_METHODS))

    def check(self, ctx: astutil.FileContext):
        for func in ctx.hot_function_nodes:
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: astutil.FileContext,
                        func: astutil.FunctionNode):
        label = ctx.qualname(func)
        loops = self._loop_nodes(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, func, label, node, loops)
            elif isinstance(node, ast.JoinedStr):
                if not ctx.is_gated(func, node) \
                        and not ctx.in_raise(node):
                    yield ctx.finding(
                        self, node,
                        f"f-string built in hot path {label}() outside "
                        "the REPRO_OBS gate; hoist it behind "
                        "`if _obs.enabled():` (error paths inside "
                        "`raise` are exempt)")
            elif isinstance(node, _COMPREHENSIONS):
                if id(node) in loops and not ctx.is_gated(func, node):
                    yield ctx.finding(
                        self, node,
                        f"comprehension allocates per iteration inside "
                        f"a loop of hot path {label}(); hoist it out or "
                        "fill a preallocated buffer")

    def _check_call(self, ctx: astutil.FileContext,
                    func: astutil.FunctionNode, label: str,
                    node: ast.Call, loops: typing.Set[int]):
        gated = ctx.is_gated(func, node)
        lat_call = self._latency_call_name(ctx, node)
        if lat_call is not None:
            if not gated:
                yield ctx.finding(
                    self, node,
                    f"latency-recorder call `{lat_call}(...)` in hot "
                    f"path {label}() is not behind the REPRO_OBS gate; "
                    "use the sentinel idiom `lat = ... if "
                    "_obs.enabled() else None` and `if lat is not "
                    "None:`")
            return
        shard_call = self._runlog_call_name(ctx, node)
        if shard_call is not None:
            if not gated:
                yield ctx.finding(
                    self, node,
                    f"runlog shard write `{shard_call}(...)` in hot "
                    f"path {label}() is not behind the REPRO_OBS gate; "
                    "shard flushes serialise a full snapshot to disk — "
                    "wrap them in `if _obs.enabled():`")
            return
        obs_name = ctx.is_obs_call(node)
        if obs_name is not None:
            terminal = obs_name.split(".")[-1]
            if terminal == "enabled":
                return
            if terminal == "span" and self._is_with_context(ctx, node):
                return
            if not gated:
                yield ctx.finding(
                    self, node,
                    f"obs call `{obs_name}(...)` in hot path {label}() "
                    "is not behind the REPRO_OBS gate; wrap it in "
                    "`if _obs.enabled():`")
            return
        name = astutil.dotted(node.func)
        parts = name.split(".") if name else []
        if parts and parts[0] in ctx.time_aliases and len(parts) == 2 \
                and parts[1] in _WALLCLOCK:
            if not gated:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read `{name}()` in hot path {label}() "
                    "outside the REPRO_OBS gate; use `"
                    f"{name}() if _obs.enabled() else 0.0` so the "
                    "disabled path stays clock-free")
            return
        if not gated and not ctx.in_raise(node):
            if name in _STRING_BUILDERS or \
                    (parts and parts[0] in ("logging", "log", "logger")):
                yield ctx.finding(
                    self, node,
                    f"`{name}` call in hot path {label}() outside the "
                    "REPRO_OBS gate")
                return
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "format" \
                    and isinstance(node.func.value,
                                   (ast.Constant, ast.JoinedStr)):
                yield ctx.finding(
                    self, node,
                    f"str.format() in hot path {label}() outside the "
                    "REPRO_OBS gate")
                return
        if id(node) in loops and not gated:
            yield from self._check_allocation(ctx, label, node, name)

    def _check_allocation(self, ctx: astutil.FileContext, label: str,
                          node: ast.Call, name: typing.Optional[str]):
        parts = name.split(".") if name else []
        if len(parts) == 2 and parts[0] in ctx.numpy_aliases \
                and parts[1] in _ALLOC_NP:
            yield ctx.finding(
                self, node,
                f"`{name}` allocates per iteration inside a loop of "
                f"hot path {label}(); hoist the buffer and fill it in "
                "place (np.copyto / out=)")
        elif name in _ALLOC_BUILTINS:
            yield ctx.finding(
                self, node,
                f"`{name}()` allocates per iteration inside a loop of "
                f"hot path {label}(); hoist it out of the loop")
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in _ALLOC_METHODS \
                and not (parts and parts[0] in ctx.numpy_aliases):
            yield ctx.finding(
                self, node,
                f".{node.func.attr}() allocates per iteration inside a "
                f"loop of hot path {label}(); hoist it out of the loop")

    def _latency_call_name(self, ctx: astutil.FileContext,
                           node: ast.Call) -> typing.Optional[str]:
        """The dotted name of a latency-recorder call, or ``None``.

        Module-rooted :mod:`repro.obs.lat` calls are always in scope;
        method calls match only when the method is a configured latency
        method *and* the dotted receiver mentions ``lat`` — so an
        unrelated ``writer.finish()`` never trips the rule.
        """
        name = ctx.is_lat_call(node)
        if name is not None:
            return name
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in self._latency_methods:
            return None
        name = astutil.dotted(node.func)
        if name is None:
            return None
        receiver = name.rsplit(".", 1)[0].lower()
        if "lat" in receiver:
            return name
        return None

    def _runlog_call_name(self, ctx: astutil.FileContext,
                          node: ast.Call) -> typing.Optional[str]:
        """The dotted name of a run-log shard write, or ``None``.

        Module-rooted runlog calls are always in scope; method calls
        match only when the method is a configured shard method *and*
        the dotted receiver mentions ``shard`` or ``runlog`` — so a
        plain ``stream.flush()`` never trips the rule.
        """
        name = ctx.is_runlog_call(node)
        if name is not None:
            return name
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in self._shard_methods:
            return None
        name = astutil.dotted(node.func)
        if name is None:
            return None
        receiver = name.lower()
        if "shard" in receiver or "runlog" in receiver:
            return name
        return None

    def _loop_nodes(self, func: astutil.FunctionNode) -> typing.Set[int]:
        """ids of nodes that sit inside a for/while loop of ``func``."""
        inside: typing.Set[int] = set()

        def visit(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue
                child_in_loop = in_loop or isinstance(
                    child, (ast.For, ast.AsyncFor, ast.While))
                if in_loop:
                    inside.add(id(child))
                visit(child, child_in_loop)

        visit(func, False)
        return inside

    def _is_with_context(self, ctx: astutil.FileContext,
                         node: ast.Call) -> bool:
        parent = ctx.parent(node)
        return isinstance(parent, ast.withitem)
