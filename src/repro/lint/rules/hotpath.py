"""Rule ``hot-path``: zero-overhead discipline in marked functions.

Applies to functions carrying the :func:`repro.perf.hot_path` decorator
or listed (dotted names) in the ``functions`` option.  Mark *leaf* inner
functions (one PE reduction, one DRAM transfer, one parameter sync) —
not orchestration loops, whose functional timing would false-positive.

Inside a hot function, everything that exists only for telemetry or
debugging must sit behind the ``REPRO_OBS`` gate (``if
_obs.enabled():`` block, ``x if _obs.enabled() else y`` ternary, a
local ``observing = _obs.enabled()`` alias, or the early-return guard
``if not _obs.enabled(): ...; return``):

* **obs calls** — ``_obs.metrics()`` / ``_obs.tracer()`` chains.
  (``_obs.enabled()`` is the gate itself; ``_obs.span(...)`` used
  directly as a ``with`` context is self-gating — it returns a shared
  no-op manager while disabled — and is exempt.)
* **wall-clock reads** — ``time.perf_counter()`` etc. exist only to
  feed telemetry in a leaf hot function; hoist them behind the gate
  (``started = time.perf_counter() if _obs.enabled() else 0.0``).
* **string construction** — f-strings, ``str.format``, ``print`` /
  ``logging`` calls.  Error paths are cold: anything inside a ``raise``
  statement is exempt.
* **allocation per iteration** — calls that allocate on every pass of a
  ``for``/``while`` (``np.zeros``/``np.empty``/``np.array``/
  ``np.concatenate``/..., ``list()``/``dict()``/``set()``, ``.copy()``/
  ``.astype()``/``.tolist()``, and comprehensions).  The loop model is
  precise (see :mod:`repro.lint.hazards`): ``for`` targets+bodies and
  ``while`` tests+bodies are per-iteration; loop ``else`` clauses and
  ``for`` iterables run once and are exempt unless an outer loop
  repeats them.  Hoist the buffer out of the loop and fill it in place
  (``np.copyto``, ``out=``).  Bare ``[]``/``{}`` literals are exempt —
  resetting a handed-off list is idiomatic and cheap next to building
  its contents.
* **run-log shard writes** — anything rooted at
  :mod:`repro.obs.runlog`, and ``flush`` / ``heartbeat`` /
  ``maybe_heartbeat`` calls (the ``runlog-methods`` option) on objects
  whose name mentions ``shard`` or ``runlog``.  Shard flushes serialise
  a full registry snapshot to disk — strictly gated territory.  The
  name heuristic keeps unrelated ``stream.flush()`` calls out of scope.
* **latency recorders** — anything rooted at :mod:`repro.obs.lat`,
  and ``add_ns`` / ``finish`` calls (the ``latency-methods`` option)
  on objects whose name mentions ``lat``.  The sanctioned idiom is the
  sentinel: ``lat = _lat.RoutineLatency(...) if _obs.enabled() else
  None`` then ``if lat is not None: lat.add_ns(...)`` — the gate
  analysis treats the ``is not None`` check as REPRO_OBS-gated.

The per-function scan itself lives in :mod:`repro.lint.hazards`, shared
with the whole-program index so ``hot-path-transitive`` applies exactly
the same discipline through the call graph.
"""

from __future__ import annotations

from repro.lint import astutil, hazards
from repro.lint.registry import Rule, register


def hazard_finding_message(hazard: hazards.Hazard, label: str) -> str:
    """The ``hot-path`` finding text for one hazard in ``label()``."""
    if hazard.kind == "latency":
        return (f"latency-recorder call `{hazard.name}(...)` in hot "
                f"path {label}() is not behind the REPRO_OBS gate; "
                "use the sentinel idiom `lat = ... if _obs.enabled() "
                "else None` and `if lat is not None:`")
    if hazard.kind == "runlog":
        return (f"runlog shard write `{hazard.name}(...)` in hot "
                f"path {label}() is not behind the REPRO_OBS gate; "
                "shard flushes serialise a full snapshot to disk — "
                "wrap them in `if _obs.enabled():`")
    if hazard.kind == "obs":
        return (f"obs call `{hazard.name}(...)` in hot path {label}() "
                "is not behind the REPRO_OBS gate; wrap it in "
                "`if _obs.enabled():`")
    if hazard.kind == "wallclock":
        return (f"wall-clock read `{hazard.name}()` in hot path "
                f"{label}() outside the REPRO_OBS gate; use `"
                f"{hazard.name}() if _obs.enabled() else 0.0` so the "
                "disabled path stays clock-free")
    if hazard.kind == "string":
        if hazard.subkind == "fstring":
            return (f"f-string built in hot path {label}() outside "
                    "the REPRO_OBS gate; hoist it behind "
                    "`if _obs.enabled():` (error paths inside "
                    "`raise` are exempt)")
        if hazard.subkind == "format":
            return (f"str.format() in hot path {label}() outside the "
                    "REPRO_OBS gate")
        return (f"`{hazard.name}` call in hot path {label}() outside "
                "the REPRO_OBS gate")
    # alloc
    if hazard.subkind == "comprehension":
        return (f"comprehension allocates per iteration inside a loop "
                f"of hot path {label}(); hoist it out or fill a "
                "preallocated buffer")
    if hazard.subkind == "np":
        return (f"`{hazard.name}` allocates per iteration inside a "
                f"loop of hot path {label}(); hoist the buffer and "
                "fill it in place (np.copyto / out=)")
    if hazard.subkind == "method":
        return (f"{hazard.name}() allocates per iteration inside a "
                f"loop of hot path {label}(); hoist it out of the loop")
    return (f"`{hazard.name}()` allocates per iteration inside a loop "
            f"of hot path {label}(); hoist it out of the loop")


@register
class HotPathRule(Rule):
    name = "hot-path"
    description = ("telemetry, string building, wall-clock reads, "
                   "runlog shard writes, and per-iteration allocation "
                   "in @hot_path functions must be behind the "
                   "REPRO_OBS gate")

    def __init__(self, options=None):
        super().__init__(options)
        self._shard_methods = set(self.list_option(
            "runlog-methods", hazards.RUNLOG_DEFAULT_METHODS))
        self._latency_methods = set(self.list_option(
            "latency-methods", hazards.LATENCY_DEFAULT_METHODS))

    def check(self, ctx: astutil.FileContext):
        for func in ctx.hot_function_nodes:
            label = ctx.qualname(func)
            for hazard in hazards.scan_hazards(ctx, func,
                                               self._shard_methods,
                                               self._latency_methods):
                if hazard.kind == "alloc" and not hazard.in_loop:
                    continue       # one-off allocation is fine in a leaf
                yield astutil.Finding(
                    rule=self.name, path=ctx.relpath,
                    line=hazard.lineno, col=hazard.col,
                    end_line=hazard.end_lineno,
                    message=hazard_finding_message(hazard, label))
