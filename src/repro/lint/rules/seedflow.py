"""Rule ``seed-flow``: one shared seed-derivation contract.

Per-stream seeds (one per agent, worker, env slot, eval episode, ...)
must come from the named contract functions in
:mod:`repro.backends.protocol` — ``derive_agent_seed`` and friends —
so every platform, actor model, and test agrees on stream identity.
Ad-hoc arithmetic like ``seed * 1009 + worker_id`` scattered at call
sites silently forks the contract: two sites drift independently and
replays stop lining up across backends.

Three findings, all driven by the whole-program index
(:mod:`repro.lint.program` extracts the seed sites per file, so they
cache and resolve across modules):

* **ad-hoc argument** — seed arithmetic written inline in the argument
  of a seeding call (``env.seed(...)``, ``np.random.default_rng(...)``,
  ``random.Random(...)``, ``SeedSequence(...)``, ...), including
  inside a comprehension (``engine.seed([seed * K + i for i ...])``).
* **ad-hoc provenance** — the argument is a local name whose
  assignment is such arithmetic; the chain points at the assignment.
* **parallel contract** — the argument is a call to a function that
  itself *returns* ad-hoc seed arithmetic but is not a declared
  contract function.  Declared = the defaults below plus the ``allow``
  option (terminal names).  The definition of such a function is also
  flagged in its own module, whether or not it is called.

Plain offsets (``seed + 1``) are not per-stream derivations and do not
trip the rule; neither does passing ``seed`` straight through, nor
calling any allow-listed contract.  The ``id-names`` option extends
the identifier vocabulary recognised as a stream index.
"""

from __future__ import annotations

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Terminal names accepted as the shared derivation contract.
DEFAULT_ALLOW = ("derive_agent_seed", "derive_policy_seed",
                 "derive_eval_seed")
CONTRACT_HOME = "repro.backends.protocol"


@register
class SeedFlowRule(Rule):
    name = "seed-flow"
    description = ("per-stream seeds must flow through the declared "
                   "derivation contract (repro.backends.protocol), "
                   "not ad-hoc `seed * K + id` arithmetic")
    requires_program = True

    def __init__(self, options=None):
        super().__init__(options)
        self._allow = set(DEFAULT_ALLOW) | set(self.list_option("allow"))

    def check_module(self, program, summary):
        for func in summary.functions.values():
            yield from self._check_sites(program, summary, func)
            yield from self._check_definition(summary, func)

    def _check_sites(self, program, summary, func):
        for site in func.seed_sites:
            if site.kind == "adhoc":
                yield Finding(
                    rule=self.name, path=summary.path,
                    line=site.lineno, col=site.col,
                    end_line=site.end_lineno,
                    message=(f"ad-hoc seed arithmetic `{site.expr}` "
                             f"passed to {site.target}(); derive "
                             "per-stream seeds through the shared "
                             f"contract ({CONTRACT_HOME}."
                             "derive_agent_seed and friends) so every "
                             "platform agrees on stream identity"),
                    chain=(f"{summary.path}:{site.lineno}: "
                           f"{func.qualname}() seeds {site.target}() "
                           f"with `{site.expr}`",))
            elif site.kind == "name-adhoc":
                name = site.expr.split(" = ", 1)[0]
                yield Finding(
                    rule=self.name, path=summary.path,
                    line=site.lineno, col=site.col,
                    end_line=site.end_lineno,
                    message=(f"seed argument `{name}` of "
                             f"{site.target}() comes from ad-hoc "
                             f"arithmetic (`{site.expr}`, line "
                             f"{site.provenance_line}); use the shared "
                             f"contract in {CONTRACT_HOME} instead"),
                    chain=(f"{summary.path}:{site.provenance_line}: "
                           f"`{site.expr}`",
                           f"{summary.path}:{site.lineno}: "
                           f"{func.qualname}() seeds {site.target}() "
                           f"with `{name}`"))
            elif site.kind == "call":
                yield from self._check_call_site(program, summary,
                                                 func, site)

    def _check_call_site(self, program, summary, func, site):
        terminal = site.callee.split(".")[-1]
        if terminal in self._allow:
            return
        resolved = program.resolve_name(summary.module, site.callee)
        if resolved is None:
            return                         # outside the program: trust it
        callee = program.function(resolved)
        if callee is None or not callee.adhoc_seed_return:
            return
        if callee.qualname.rsplit(".", 1)[-1] in self._allow:
            return
        callee_path = program.function_path(resolved)
        yield Finding(
            rule=self.name, path=summary.path,
            line=site.lineno, col=site.col, end_line=site.end_lineno,
            message=(f"{site.callee}() feeds {site.target}() but "
                     "mints its own seed arithmetic (`return "
                     f"{callee.adhoc_detail}` at {callee_path}:"
                     f"{callee.lineno}) and is not a declared seed "
                     f"contract; reuse {CONTRACT_HOME} or add it to "
                     "[tool.repro-lint.seed-flow].allow"),
            chain=(f"{summary.path}:{site.lineno}: {func.qualname}() "
                   f"seeds {site.target}() with {site.callee}(...)",
                   f"{callee_path}:{callee.lineno}: "
                   f"{callee.qualname}() returns "
                   f"`{callee.adhoc_detail}`"))

    def _check_definition(self, summary, func):
        if not func.adhoc_seed_return:
            return
        if func.qualname.rsplit(".", 1)[-1] in self._allow:
            return
        yield Finding(
            rule=self.name, path=summary.path,
            line=func.lineno, col=func.col,
            message=(f"{func.qualname}() returns ad-hoc per-stream "
                     f"seed arithmetic (`{func.adhoc_detail}`), "
                     "forking the derivation contract; move it into "
                     f"{CONTRACT_HOME} and add the name to "
                     "[tool.repro-lint.seed-flow].allow"),
            chain=(f"{summary.path}:{func.lineno}: {func.qualname}() "
                   f"returns `{func.adhoc_detail}`",))
