"""Rule ``attribution``: every cycle counter feeds the profiler.

The cycle-attribution invariant (PR 2) is that buckets partition the
total: every simulated cycle / modelled nanosecond ends up in exactly
one cause bucket of :mod:`repro.obs.prof`.  A stateful cycle counter
that a simulator object accumulates *without* ever emitting an obs
metric or passing through the bucket-decomposition API is invisible to
``obs-report`` / ``repro bench`` — a coverage hole this rule closes.

In the ``modules`` option (default ``repro/fpga`` + ``repro/gpu``), an
augmented assignment onto a cycle-ish attribute of ``self``
(``self.total_cycles += ...``, ``self.busy_ns += ...``) is flagged
unless the *same function* also

* emits an obs metric behind the ``REPRO_OBS`` gate (the counter is
  mirrored into the registry the profiler reads), or
* calls into the bucket API (``fpga_stage_buckets`` /
  ``split_residual`` / a ``*record_stage*`` helper), meaning the cycles
  are decomposed downstream.

Counters that are pure test bookkeeping can be pragma'd with the reason
they never reach a report.
"""

from __future__ import annotations

import ast
import re

from repro.lint import astutil
from repro.lint.config import path_matches_any
from repro.lint.registry import Rule, register

_DEFAULT_MODULES = ("repro/fpga", "repro/gpu")

#: Attribute names treated as cycle/time accumulators.
_CYCLEISH = re.compile(r"(^|_)cycles?($|_)|(^|_)ns$|_nanos$|(^|_)ticks?$")

_BUCKET_API = re.compile(r"(fpga_stage_buckets|split_residual"
                         r"|record_stage)")


@register
class AttributionRule(Rule):
    name = "attribution"
    description = ("cycle/ns accumulators in fpga/gpu must reach the "
                   "obs.prof bucket pipeline")

    def check(self, ctx: astutil.FileContext):
        if not path_matches_any(ctx.relpath,
                                self.list_option("modules",
                                                 _DEFAULT_MODULES)):
            return
        for func in ctx.functions():
            sites = [node for node in ast.walk(func)
                     if self._is_cycle_accumulation(node)]
            if not sites:
                continue
            if self._routes_to_prof(ctx, func):
                continue
            for node in sites:
                target = astutil.dotted(node.target) or "counter"
                yield ctx.finding(
                    self, node,
                    f"`{target} += ...` accumulates cycles in "
                    f"{ctx.qualname(func)}() without routing through "
                    "the obs.prof bucket API — emit a gated obs counter "
                    "or decompose via fpga_stage_buckets so "
                    "attribution still sums to the total")

    def _is_cycle_accumulation(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.AugAssign) \
                or not isinstance(node.op, ast.Add):
            return False
        target = node.target
        if not isinstance(target, ast.Attribute):
            return False
        if not isinstance(target.value, ast.Name) \
                or target.value.id != "self":
            return False
        return bool(_CYCLEISH.search(target.attr))

    def _routes_to_prof(self, ctx: astutil.FileContext,
                        func: astutil.FunctionNode) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.dotted(node.func)
            if name and _BUCKET_API.search(name):
                return True
            if ctx.is_obs_call(node) is not None \
                    and name is not None \
                    and name.split(".")[-1] != "enabled" \
                    and ctx.is_gated(func, node):
                return True
        return False
