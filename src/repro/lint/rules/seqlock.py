"""Rule ``seqlock``: the shared-parameter store's locking protocol.

:class:`repro.core.shared_params.SharedParameterStore` keeps θ and the
RMSProp ``g`` in shared memory behind a writer lock and a seqlock
version word.  The protocol has two sides, and each gets a check:

* **Writer side** (inside the ``store-modules``, default
  ``repro/core/shared_params.py``): mutations of shared state — the
  ``_version``/``_step``/``_updates`` counter words and writes into the
  ``theta_flat()``/``g_flat()`` vectors — must happen while the writer
  lock is held: lexically inside ``with <...>.lock:``, or in a function
  that first calls ``<...>.lock.acquire()`` or one of the
  ``acquire-helpers`` (default ``_timed_acquire``).
* **Reader side** (everywhere else): code must not reach into the
  store's internals at all — calling ``theta_flat()`` / ``g_flat()`` /
  ``begin_write()`` / ``end_write()``, or touching ``store._theta`` /
  ``store._g`` / ``store._version``, bypasses the seqlock and can see a
  torn write.  Use the snapshot API (``snapshot_into`` /
  ``snapshot_flat_into`` / ``publish`` / ``apply_gradients``).

The writer-side check is lexical, not a dataflow analysis: writes that
happen before the store is shared (construction) or in protocol
primitives whose *callers* hold the lock carry a pragma stating that.
"""

from __future__ import annotations

import ast
import typing

from repro.lint import astutil
from repro.lint.config import path_matches_any
from repro.lint.registry import Rule, register

_DEFAULT_STORE_MODULES = ("repro/core/shared_params.py",)
_DEFAULT_ACQUIRE_HELPERS = ("_timed_acquire",)

#: Shared counter words: writes to `<x>._step.value` etc. need the lock.
_COUNTER_WORDS = {"_version", "_step", "_updates"}

#: Store methods that hand out raw views of the shared vectors.
_RAW_VIEW_METHODS = {"theta_flat", "g_flat"}

#: Writer-side protocol methods callers outside the store must not use.
_WRITER_PROTOCOL = {"begin_write", "end_write"}


@register
class SeqlockRule(Rule):
    name = "seqlock"
    description = ("SharedParameterStore writes need the writer lock; "
                   "readers must use the snapshot/seqlock API")

    def check(self, ctx: astutil.FileContext):
        in_store = path_matches_any(
            ctx.relpath,
            self.list_option("store-modules", _DEFAULT_STORE_MODULES))
        if in_store:
            yield from self._check_writer_side(ctx)
        else:
            yield from self._check_reader_side(ctx)

    # -- reader side -------------------------------------------------------

    def _check_reader_side(self, ctx: astutil.FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in _RAW_VIEW_METHODS:
                    yield ctx.finding(
                        self, node,
                        f".{method}() outside the store module bypasses "
                        "the seqlock; use snapshot_into()/"
                        "snapshot_flat_into() for a torn-read-safe copy")
                elif method in _WRITER_PROTOCOL:
                    yield ctx.finding(
                        self, node,
                        f".{method}() outside the store module; only "
                        "the store's own locked write paths may drive "
                        "the seqlock version word")
            elif isinstance(node, ast.Attribute) \
                    and node.attr in ("_theta", "_g", "_version") \
                    and self._base_is_store(node.value):
                yield ctx.finding(
                    self, node,
                    f"direct access to store.{node.attr} bypasses the "
                    "snapshot/seqlock API")

    def _base_is_store(self, node: ast.AST) -> bool:
        terminal = astutil.terminal_name(node)
        return terminal is not None and (terminal == "store"
                                         or terminal.endswith("_store"))

    # -- writer side -------------------------------------------------------

    def _check_writer_side(self, ctx: astutil.FileContext):
        for func in ctx.functions():
            writes = list(self._shared_writes(func))
            if not writes:
                continue
            for node, what in writes:
                if not self._lock_held(ctx, func, node):
                    yield ctx.finding(
                        self, node,
                        f"{what} outside a `with ....lock:` region (and "
                        "no lock acquire earlier in "
                        f"{ctx.qualname(func)}()); a concurrent reader "
                        "can see a torn write")

    def _shared_writes(self, func: astutil.FunctionNode
                       ) -> typing.Iterator[typing.Tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    word = self._counter_word(target)
                    if word:
                        yield node, f"write to {word}.value"
                    elif self._is_raw_view_write(target):
                        yield node, "write into a shared raw view"
            elif isinstance(node, ast.Call):
                name = astutil.dotted(node.func)
                if name and name.split(".")[-1] == "copyto" \
                        and node.args \
                        and self._is_raw_view_expr(node.args[0]):
                    yield node, "np.copyto into a shared vector"

    def _counter_word(self, target: ast.AST) -> typing.Optional[str]:
        """``_step`` for a ``<...>._step.value`` assignment target."""
        if isinstance(target, ast.Attribute) and target.attr == "value":
            base = astutil.terminal_name(target.value)
            if base in _COUNTER_WORDS:
                return base
        return None

    def _is_raw_view_write(self, target: ast.AST) -> bool:
        return isinstance(target, ast.Subscript) \
            and self._is_raw_view_expr(target.value)

    def _is_raw_view_expr(self, node: ast.AST) -> bool:
        """Does the expression call theta_flat()/g_flat() (possibly
        through a subscript)?"""
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _RAW_VIEW_METHODS

    def _lock_held(self, ctx: astutil.FileContext,
                   func: astutil.FunctionNode, node: ast.AST) -> bool:
        # Lexically inside `with <...>.lock:` (any withitem whose
        # context expression's terminal attribute is `lock`)?
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if astutil.terminal_name(expr) == "lock":
                        return True
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                break
        # Or after an explicit acquire earlier in the same function?
        helpers = set(self.list_option("acquire-helpers",
                                       _DEFAULT_ACQUIRE_HELPERS))
        line = getattr(node, "lineno", 0)
        for other in ast.walk(func):
            if not isinstance(other, ast.Call):
                continue
            if getattr(other, "lineno", line + 1) >= line:
                continue
            name = astutil.dotted(other.func) or ""
            parts = name.split(".")
            if parts[-1] in helpers:
                return True
            if len(parts) >= 2 and parts[-1] == "acquire" \
                    and parts[-2] == "lock":
                return True
        return False
