"""Built-in rules; importing this package registers them."""

from repro.lint.rules import attribution         # noqa: F401
from repro.lint.rules import determinism         # noqa: F401
from repro.lint.rules import fp32order           # noqa: F401
from repro.lint.rules import hotpath             # noqa: F401
from repro.lint.rules import hotpath_transitive  # noqa: F401
from repro.lint.rules import layering            # noqa: F401
from repro.lint.rules import seedflow            # noqa: F401
from repro.lint.rules import seqlock             # noqa: F401
