"""Rule ``hot-path-transitive``: hot-path discipline through calls.

The ``hot-path`` rule checks the body of each ``@hot_path`` function;
this rule follows its *calls* through the whole-program call graph
(up to ``depth`` edges, default 3) and flags hot functions that reach
an ungated hazard inside a plain helper — the classic leak where the
leaf stays clean but delegates its telemetry or allocation to a callee
the per-file rule never connects to the hot caller.

Resolution comes from :class:`repro.lint.program.ProgramIndex` and is
over-approximate; see that module.  Semantics:

* Traversal stops at callees that are themselves hot — their bodies
  are already held to the discipline directly (by ``hot-path``) and
  their own calls get their own traversal from their module.
* Traversal skips call sites that are themselves obs-gated
  (``if observing: record_routine(...)``) — everything reached through
  a gated call only runs while observing, which is the discipline.
* Non-allocation hazards (obs calls, wall-clock reads, string
  building, runlog shard writes, latency recorders) are violations at
  any call distance.
* Allocation hazards count only when they are *per-iteration in
  effect*: inside a loop of the callee itself, or reached through a
  call site that sits in a loop somewhere along the chain — a one-off
  allocation in straight-line helper code is fine.

Each finding is anchored at the first call site inside the hot
function and carries the full chain (``chain`` entries, one hop per
line — shown by ``repro lint --why <id>``); the message spells out the
call path so the report alone is actionable.
"""

from __future__ import annotations

import collections
import typing

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_DEPTH = 3


@register
class HotPathTransitiveRule(Rule):
    name = "hot-path-transitive"
    description = ("@hot_path functions must not reach ungated "
                   "telemetry, wall-clock reads, string building, or "
                   "per-iteration allocation through their callees")
    requires_program = True

    def __init__(self, options=None):
        super().__init__(options)
        try:
            self._depth = int(self.options.get("depth", DEFAULT_DEPTH))
        except (TypeError, ValueError):
            self._depth = DEFAULT_DEPTH

    def check_module(self, program, summary):
        for func in summary.functions.values():
            if func.hot:
                yield from self._scan(program, summary, func)

    def _scan(self, program, summary, func):
        root = f"{summary.module}.{func.qualname}"
        # BFS so the first chain reaching a hazard is the shortest.
        # visited maps callee -> was it ever reached through a loop;
        # a loop-reaching revisit upgrades (alloc hazards may only
        # count on the loop path).
        visited: typing.Dict[str, bool] = {root: True}
        reported: typing.Set[typing.Tuple] = set()
        Entry = collections.namedtuple(
            "Entry", "full depth in_loop chain anchor")
        queue: typing.Deque = collections.deque()
        queue.append(Entry(root, 0, False, (), None))
        while queue:
            entry = queue.popleft()
            callee = program.function(entry.full)
            if callee is None:
                continue
            if entry.depth > 0:
                yield from self._hazard_findings(
                    program, summary, func, entry, callee, reported)
            if entry.depth >= self._depth:
                continue
            caller_module = program.function_module(entry.full)
            caller_path = program.function_path(entry.full)
            for site in callee.calls:
                if site.gated:
                    continue      # obs-gated call: subtree gated too
                for target in program.resolve_call(
                        caller_module, callee.qualname, site):
                    target_summary = program.function(target)
                    if target_summary is None or target_summary.hot:
                        continue          # hot callees checked directly
                    in_loop = entry.in_loop or site.in_loop
                    if target in visited and \
                            (visited[target] or not in_loop):
                        continue
                    visited[target] = in_loop
                    hop = (f"{caller_path}:{site.lineno}: "
                           f"{callee.qualname}() calls "
                           f"{target_summary.qualname}()"
                           + (" inside a loop" if site.in_loop else ""))
                    anchor = entry.anchor or site
                    queue.append(Entry(target, entry.depth + 1,
                                       in_loop,
                                       entry.chain + (hop,), anchor))

    def _hazard_findings(self, program, summary, func, entry, callee,
                         reported):
        callee_path = program.function_path(entry.full)
        names = [func.qualname] + [
            hop.split(" calls ")[-1].split("(")[0].replace(")", "")
            for hop in entry.chain]
        via = " -> ".join(f"{name}()" for name in names)
        for hazard in callee.hazards:
            if hazard.kind == "alloc" and \
                    not (hazard.in_loop or entry.in_loop):
                continue
            key = (entry.anchor.lineno, entry.anchor.col, entry.full,
                   hazard.lineno, hazard.col, hazard.kind, hazard.name)
            if key in reported:
                continue
            reported.add(key)
            chain = entry.chain + (
                f"{callee_path}:{hazard.lineno}: "
                f"{callee.qualname}() has {hazard.describe()}",)
            yield Finding(
                rule=self.name, path=summary.path,
                line=entry.anchor.lineno, col=entry.anchor.col,
                end_line=entry.anchor.end_lineno,
                message=(f"hot path {func.qualname}() reaches "
                         f"{hazard.describe()} at "
                         f"{callee_path}:{hazard.lineno} via {via} "
                         f"(depth {entry.depth}); gate the hazard, "
                         "hoist it out of the call chain, or mark the "
                         "callee @hot_path to lint it directly"),
                chain=chain)
