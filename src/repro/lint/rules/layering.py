"""Rule ``layering``: the architecture DAG, enforced.

``docs/architecture.md`` declares the layer stack (envs -> trainers ->
backends -> platform models, with ``repro.sim`` / ``repro.obs`` /
``repro.perf`` cross-cutting below).  This rule reads the DAG from
config and flags module-scope imports that point the wrong way::

    [tool.repro-lint.layering]
    layers = [
        "envs: repro.ale, repro.envs",
        "trainers: repro.core",
        "platforms: repro.fpga, repro.gpu, repro.sim",
        "obs-writers: repro.obs.runlog, repro.obs.lat",
    ]
    forbid = [
        "trainers -> platforms",
        "envs -> trainers",
        "platforms -> obs-writers",
    ]

Each ``layers`` entry is ``name: module-prefix, module-prefix``;
``forbid`` edges name layers (or raw module prefixes) and ban every
module-scope import from a module in the left layer to one in the
right.  **Lazy (function-scoped) imports are exempt by design** — they
are the sanctioned downward-crossing idiom (a trainer resolving its
platform inside ``resolve_backend()``), precisely because they keep
the import graph acyclic and numeric-only runs light.

Import targets are matched both textually (the dotted name in the
``import`` statement) and after resolution through the program index
(so ``from repro import fpga`` cannot dodge a ``repro.fpga`` ban).

Independent of the declared edges, the rule reports **module-scope
import cycles that cross a package boundary** (``report-cycles =
false`` to disable).  Cycles inside one package — ``__init__``
re-export knots — are the package's own business; a cross-package
cycle means the layer diagram is lying and import order decides what
works.  Each cycle is reported once, anchored in its alphabetically
first member.
"""

from __future__ import annotations

import typing

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _norm_prefix(prefix: str) -> str:
    return prefix.strip().replace("/", ".").strip(".")


def _module_matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@register
class LayeringRule(Rule):
    name = "layering"
    description = ("module-scope imports must follow the declared "
                   "architecture DAG; cross-package import cycles are "
                   "reported")
    requires_program = True

    def __init__(self, options=None):
        super().__init__(options)
        self._layers: typing.Dict[str, typing.List[str]] = {}
        for entry in self.list_option("layers"):
            if ":" not in entry:
                continue
            name, _, prefixes = entry.partition(":")
            self._layers[name.strip()] = [
                _norm_prefix(p) for p in prefixes.split(",")
                if p.strip()]
        self._forbid: typing.List[typing.Tuple[str, str]] = []
        for entry in self.list_option("forbid"):
            if "->" not in entry:
                continue
            src, _, dst = entry.partition("->")
            self._forbid.append((src.strip(), dst.strip()))
        self._report_cycles = bool(
            self.options.get("report-cycles", True))

    def _prefixes(self, spec: str) -> typing.List[str]:
        return self._layers.get(spec, [_norm_prefix(spec)])

    def check_module(self, program, summary):
        yield from self._forbidden_edges(program, summary)
        if self._report_cycles:
            yield from self._cycles(program, summary)

    def _forbidden_edges(self, program, summary):
        seen: typing.Set[typing.Tuple[int, str, str]] = set()
        for edge in summary.imports:
            if edge.lazy:
                continue
            targets = {edge.target} | set(program.resolve_import(edge))
            for src_spec, dst_spec in self._forbid:
                if not any(_module_matches(summary.module, p)
                           for p in self._prefixes(src_spec)):
                    continue
                hit = next(
                    (t for t in sorted(targets)
                     if any(_module_matches(t, p)
                            for p in self._prefixes(dst_spec))
                     and not any(_module_matches(summary.module, p)
                                 for p in self._prefixes(dst_spec))),
                    None)
                if hit is None:
                    continue
                key = (edge.lineno, src_spec, dst_spec)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    rule=self.name, path=summary.path,
                    line=edge.lineno, col=edge.col,
                    end_line=edge.end_lineno,
                    message=(f"`{summary.module}` (layer {src_spec}) "
                             f"imports `{hit}` (layer {dst_spec}) at "
                             "module scope; the architecture DAG "
                             "(docs/architecture.md) forbids "
                             f"{src_spec} -> {dst_spec} — make the "
                             "import lazy (function-scoped) if the "
                             "downward reference is unavoidable"),
                    chain=(f"{summary.path}:{edge.lineno}: imports "
                           f"`{hit}`",
                           f"forbidden edge {src_spec} -> {dst_spec} "
                           "([tool.repro-lint.layering].forbid)"))

    def _cycles(self, program, summary):
        for cycle in program.import_cycles():
            if summary.module != min(cycle[:-1]):
                continue                  # reported by one member only
            anchor = self._edge_to(summary, program, cycle[1])
            path_str = " -> ".join(cycle)
            chain = []
            for here, there in zip(cycle, cycle[1:]):
                mod = program.modules.get(here)
                edge = self._edge_to(mod, program, there) if mod else None
                where = f"{mod.path}:{edge.lineno}" if mod and edge \
                    else here
                chain.append(f"{where}: `{here}` imports `{there}`")
            yield Finding(
                rule=self.name, path=summary.path,
                line=anchor.lineno if anchor else 1,
                col=anchor.col if anchor else 0,
                end_line=anchor.end_lineno if anchor else None,
                message=("module-scope import cycle across packages: "
                         f"{path_str}; break it with a lazy import or "
                         "an interface module — import order now "
                         "decides which name exists first"),
                chain=tuple(chain))

    @staticmethod
    def _edge_to(summary, program, target_module: str):
        for edge in summary.imports:
            if edge.lazy:
                continue
            if target_module in program.resolve_import(edge):
                return edge
        return None
