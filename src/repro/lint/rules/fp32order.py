"""Rule ``fp32-order``: keep fp32 accumulation order explicit.

The FA3C fast path is verified *bit-exact* against the per-element
reference (see ``fpga/pe.py``): ``np.add.accumulate`` is strictly
left-to-right, ``np.add.reduce`` over an explicit axis adds slices
first-to-last, but a plain 1-D ``np.sum``/``np.add.reduce`` pairwise-sums
and ``np.dot`` delegates to BLAS with no order guarantee at all.  In the
order-sensitive modules (``modules`` option; default ``repro/fpga/pe.py``,
``repro/fpga/tlu.py``, ``repro/nn``) every reduction must therefore state
its intent:

* ``np.sum(x)`` / ``x.sum()`` without an ``axis`` argument — flagged.
  Write ``axis=...`` (``axis=None`` for a deliberate full reduction
  outside the bit-exact contract), or use
  ``np.add.reduce(..., axis=..., dtype=...)`` /
  ``np.add.accumulate`` for ordered sums.
* ``np.add.reduce(x)`` without ``axis`` — flagged (1-D reduce is
  pairwise, which reads as ordered but is not).
* ``np.dot`` / ``np.inner`` / ``np.vdot`` — always flagged here; use
  ``np.matmul``/``@`` (the documented GEMM primitive) or an ordered
  reduce, or pragma the call with the reason order cannot leak.

Quantized-kernel modules are outside the bit-exact contract by design
(their datapath rounds through a storage precision before accumulating)
and are exempted by *configuration*, not per-call pragmas: list them
under the ``quantized-modules`` option and the rule skips those files
entirely.  A config declaration keeps the exemption reviewable in one
place and prevents pragma creep inside the quantized kernels.
"""

from __future__ import annotations

import ast

from repro.lint import astutil
from repro.lint.config import path_matches_any
from repro.lint.registry import Rule, register

_DEFAULT_MODULES = ("repro/fpga/pe.py", "repro/fpga/tlu.py", "repro/nn")

_ORDER_FREE = {"dot", "inner", "vdot"}
_SUM_NAMES = {"sum", "nansum"}


def _has_axis(node: ast.Call, positional_index: int) -> bool:
    if len(node.args) > positional_index:
        return True
    return any(keyword.arg == "axis" for keyword in node.keywords)


@register
class Fp32OrderRule(Rule):
    name = "fp32-order"
    description = ("numpy reductions in bit-exact modules must state "
                   "axis/order intent")

    def check(self, ctx: astutil.FileContext):
        quantized = self.list_option("quantized-modules", ())
        if quantized and path_matches_any(ctx.relpath, quantized):
            # Declared quantized-kernel module: outside the bit-exact
            # contract, exempt by configuration rather than pragma.
            return
        if not path_matches_any(ctx.relpath,
                                self.list_option("modules",
                                                 _DEFAULT_MODULES)):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: astutil.FileContext, node: ast.Call):
        # dotted() is None for calls on computed receivers like
        # `(a * b).sum()`; those still hit the method-form check below.
        name = astutil.dotted(node.func) or ""
        parts = name.split(".") if name else []
        is_numpy = bool(parts) and parts[0] in ctx.numpy_aliases
        # np.dot / np.inner / np.vdot: no accumulation-order guarantee.
        if is_numpy and len(parts) == 2 and parts[1] in _ORDER_FREE:
            yield ctx.finding(
                self, node,
                f"`{name}` has no fp32 accumulation-order guarantee in "
                "an order-sensitive module; use np.matmul/@ or an "
                "ordered np.add.reduce, or pragma with the reason order "
                "cannot leak")
            return
        # np.add.reduce without axis: 1-D pairwise, not left-to-right.
        if is_numpy and parts[1:] == ["add", "reduce"] \
                and not _has_axis(node, positional_index=1):
            yield ctx.finding(
                self, node,
                "`np.add.reduce` without an explicit axis pairwise-sums "
                "a 1-D input; state axis= (and dtype=) or use "
                "np.add.accumulate for a strictly ordered sum")
            return
        # np.sum(x) / x.sum() without axis.
        if is_numpy and len(parts) == 2 and parts[1] in _SUM_NAMES \
                and not _has_axis(node, positional_index=1):
            yield ctx.finding(
                self, node,
                f"`{name}` without an explicit axis; write axis=... "
                "(axis=None for a deliberate full reduction) so the "
                "reduction extent and order intent are visible")
            return
        # x.sum() method form (np.sum itself was handled above).
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SUM_NAMES \
                and not (isinstance(node.func.value, ast.Name)
                         and node.func.value.id in ctx.numpy_aliases) \
                and not _has_axis(node, positional_index=0):
            yield ctx.finding(
                self, node,
                ".sum() without an explicit axis; write axis=... "
                "(axis=None for a deliberate full reduction) so the "
                "reduction extent and order intent are visible")
