"""Discrete-event simulation substrate.

A small, dependency-free discrete-event engine used by the platform layer to
model contention between A3C agents sharing compute units, DRAM channels, and
PCIe links.  The design follows the classic process-interaction style
(generators yielding events), similar in spirit to SimPy but specialised for
this project: deterministic ordering, simulated seconds as float time, and
FIFO resources with utilisation accounting.
"""

from repro.sim.engine import Engine, Interrupt, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.trace import Span, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Span",
    "Store",
    "Tracer",
    "Timeout",
]
