"""Shared resources for the discrete-event engine.

:class:`Resource` models a server pool with FIFO queuing (e.g. a compute
unit, a DRAM channel, or a PCIe link).  It records utilisation and queueing
statistics so the platform layer can report occupancy alongside throughput.

:class:`Store` is an unbounded FIFO of items with blocking ``get`` —
used to model request queues (e.g. the GA3C predictor/trainer queues).
"""

from __future__ import annotations

import collections
import typing

from repro.sim.engine import Engine
from repro.sim.events import Event


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: collections.deque = collections.deque()
        # Statistics.
        self._busy_time = 0.0
        self._last_change = 0.0
        self.total_requests = 0
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiters)

    def utilisation(self) -> float:
        """Fraction of server-time spent busy since the simulation start."""
        elapsed = self.engine.now
        if elapsed <= 0:
            return 0.0
        busy = self._busy_time
        busy += self._in_use * (self.engine.now - self._last_change)
        return busy / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.engine.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self) -> Event:
        """Return an event that fires when a server is granted."""
        self.total_requests += 1
        engine = self.engine
        event = Event(engine)
        if self._in_use < self.capacity and not self._waiters:
            # _account() inlined: acquire is on the simulator's hot path.
            now = engine._now
            self._busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append((event, engine._now))
        return event

    def release(self) -> None:
        """Return a server to the pool, waking the oldest waiter if any."""
        if self._in_use == 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            event, enqueued_at = self._waiters.popleft()
            self.total_wait_time += self.engine.now - enqueued_at
            # Server transfers directly to the waiter: in_use is unchanged.
            event.succeed()
        else:
            self._account()
            self._in_use -= 1

    def use(self, duration: float):
        """Process body: acquire, hold for ``duration``, release.

        Usage::

            yield from resource.use(1e-3)
        """
        yield self.acquire()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO of items with blocking ``get``."""

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        """Add an item, waking the oldest blocked getter if any."""
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_batch(self, max_items: int) -> typing.List:
        """Immediately drain up to ``max_items`` items (non-blocking)."""
        batch = []
        while self._items and len(batch) < max_items:
            batch.append(self._items.popleft())
        return batch
