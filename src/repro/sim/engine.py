"""The discrete-event simulation engine.

The engine maintains a priority queue of (time, sequence, event) entries and
advances simulated time by popping the earliest entry and running the event's
callbacks.  Processes are generator functions that yield events; the engine
resumes a process when the event it is waiting on fires.

Determinism: ties in time are broken by insertion order (a monotonically
increasing sequence number), so a simulation with the same inputs always
produces the same schedule.
"""

from __future__ import annotations

import heapq
import types
import typing

from repro.sim.events import AllOf, AnyOf, Event, Timeout, _PENDING

#: Heap entries whose payload is a bound method (not an Event) are fired
#: by calling it directly — the fast-path agent chains schedule their
#: resume callback without an event object (see repro.gpu.platform).
_METHOD = types.MethodType


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The process body is a generator.  Each value it yields must be an
    :class:`Event`; the process is resumed with the event's value (or the
    event's exception is thrown into the generator).
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, engine: "Engine", generator: types.GeneratorType,
                 name: str = ""):
        if not isinstance(generator, types.GeneratorType):
            raise TypeError("Process requires a generator (did you call "
                            "the function instead of passing its result?)")
        super().__init__(engine)
        self.generator = generator
        self.name = name or generator.__name__
        self._waiting_on: typing.Optional[Event] = None
        # Bootstrap: resume the process at time zero.
        start = Event(engine)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the process body has not finished."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process "
                               f"{self.name!r}")
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = Event(self.engine)
        wake.callbacks.append(self._throw_interrupt(cause))
        wake.succeed()

    def _throw_interrupt(self, cause):
        def callback(_event: Event) -> None:
            if not self.is_alive:
                return
            try:
                target = self.generator.throw(Interrupt(cause))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                self.succeed(None)
                return
            self._wait_on(target)
        return callback

    def _resume(self, event: Event) -> None:
        # Direct _ok/_value access: the event has fired by the time the
        # engine invokes this callback, so the .value pending-guard can
        # never trip and the property dispatch is pure overhead here.
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target) -> None:
        if not isinstance(target, Event):
            raise TypeError(f"process {self.name!r} yielded {target!r}, "
                            f"which is not an Event")
        self._waiting_on = target
        if target._processed:
            # Already fired: resume on the next engine step at current time.
            chain = Event(self.engine)
            chain.callbacks.append(self._resume)
            chain._ok = target.ok
            chain._value = target._value
            self.engine.schedule(chain)
        else:
            target.callbacks.append(self._resume)


class Engine:
    """Discrete-event simulation engine with a float-seconds clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue *event* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue, (self._now + delay, self._sequence,
                                     event))
        self._sequence += 1

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def process(self, generator: types.GeneratorType,
                name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event firing after every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event firing with the first of ``events``."""
        return AnyOf(self, events)

    def step(self) -> None:
        """Process the next queued entry (an event or a bare callback)."""
        time, _seq, event = heapq.heappop(self._queue)
        self._now = time
        if event.__class__ is _METHOD:
            event(None)
            return
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: typing.Union[None, float, Event] = None) -> None:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), a float (simulated
        deadline in seconds), or an :class:`Event` (stop when it fires).
        """
        # The loops below are step() unrolled with the queue, heappop,
        # and bound attributes held in locals — this is the simulator's
        # hottest code and the call/lookup overhead is measurable.
        queue = self._queue
        heappop = heapq.heappop
        if isinstance(until, Event):
            stop = until
            # stop.triggered, checked once per popped event, inlined.
            while stop._value is _PENDING:
                if not queue:
                    raise RuntimeError("simulation queue drained before the "
                                       "awaited event fired")
                time, _seq, event = heappop(queue)
                self._now = time
                if event.__class__ is _METHOD:
                    event(None)
                    continue
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
            if not stop.ok:
                raise stop.value
            return
        deadline = float("inf") if until is None else float(until)
        while queue and queue[0][0] <= deadline:
            time, _seq, event = heappop(queue)
            self._now = time
            if event.__class__ is _METHOD:
                event(None)
                continue
            event._processed = True
            callbacks = event.callbacks
            event.callbacks = []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = max(self._now, deadline)
