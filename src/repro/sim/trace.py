"""Execution tracing for discrete-event simulations.

A :class:`Tracer` collects (lane, label, start, end) spans — e.g. every
stage a compute unit executes — and renders a text Gantt chart, which is
how the platform-level claims (dual-CU overlap, bandwidth sharing,
pipeline saturation) can be *seen* rather than inferred from totals.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Span:
    """One traced interval."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> typing.Dict[str, object]:
        """JSON-ready form (machine-readable export paths)."""
        return {"lane": self.lane, "label": self.label,
                "start": self.start, "end": self.end}


class Tracer:
    """Collects spans and renders them.

    ``sink`` is an optional duck-typed forwarding target with the same
    ``record(lane, label, start, end)`` signature — pass a
    :class:`repro.obs.SpanTracer` to mirror every sim span into the
    unified observability layer (Chrome-trace export etc.) while keeping
    this tracer's text-Gantt rendering.
    """

    def __init__(self, sink: typing.Optional[object] = None):
        self.spans: typing.List[Span] = []
        self.sink = sink

    def record(self, lane: str, label: str, start: float,
               end: float) -> None:
        """Add one completed span."""
        if end < start:
            raise ValueError(f"span ends before it starts: {label}")
        self.spans.append(Span(lane=lane, label=label, start=start,
                               end=end))
        if self.sink is not None:
            self.sink.record(lane, label, start, end)

    def lanes(self) -> typing.List[str]:
        """Lane names in first-appearance order."""
        seen: typing.List[str] = []
        for span in self.spans:
            if span.lane not in seen:
                seen.append(span.lane)
        return seen

    def lane_busy(self, lane: str) -> float:
        """Total busy time of one lane (spans assumed non-overlapping
        within a lane, as resource-held stages are)."""
        return sum(span.duration for span in self.spans
                   if span.lane == lane)

    def window(self) -> typing.Tuple[float, float]:
        """(earliest start, latest end) over all spans."""
        if not self.spans:
            return (0.0, 0.0)
        return (min(s.start for s in self.spans),
                max(s.end for s in self.spans))

    def gantt(self, width: int = 72,
              lanes: typing.Optional[typing.Sequence[str]] = None,
              start: typing.Optional[float] = None,
              end: typing.Optional[float] = None) -> str:
        """A text Gantt chart: one row per lane, one char per time bin.

        Bins draw the first letter of the busiest span's label; idle
        bins draw '.'.
        """
        lanes = list(lanes or self.lanes())
        lo, hi = self.window()
        lo = lo if start is None else start
        hi = hi if end is None else end
        if hi <= lo:
            return "(empty trace)"
        bin_width = (hi - lo) / width
        name_width = max((len(lane) for lane in lanes), default=4)
        lines = [f"{'lane'.ljust(name_width)} |{'time ->'.ljust(width)}|"]
        for lane in lanes:
            row = []
            lane_spans = [s for s in self.spans if s.lane == lane]
            for index in range(width):
                b0 = lo + index * bin_width
                b1 = b0 + bin_width
                best: typing.Optional[Span] = None
                best_overlap = 0.0
                for span in lane_spans:
                    overlap = min(span.end, b1) - max(span.start, b0)
                    if overlap > best_overlap:
                        best_overlap = overlap
                        best = span
                row.append(best.label[0] if best else ".")
            lines.append(f"{lane.ljust(name_width)} |{''.join(row)}|")
        return "\n".join(lines)

    def summary(self) -> typing.List[typing.Dict[str, object]]:
        """Per-lane busy time and utilisation over the trace window."""
        lo, hi = self.window()
        total = hi - lo
        rows = []
        for lane in self.lanes():
            busy = self.lane_busy(lane)
            rows.append({
                "lane": lane,
                "busy": busy,
                "utilisation": busy / total if total > 0 else 0.0,
                "spans": sum(1 for s in self.spans if s.lane == lane),
            })
        return rows
