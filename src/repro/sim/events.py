"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronisation object.  Processes yield
events; the engine resumes the process when the event is triggered.  Events
carry an optional value that becomes the result of the ``yield`` expression
in the waiting process.
"""

from __future__ import annotations

import heapq
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Event:
    """A one-shot event that processes can wait on.

    Events move through three states: *pending* (created, not scheduled),
    *triggered* (scheduled to fire at a simulated time), and *processed*
    (callbacks have run).  ``succeed``/``fail`` trigger the event at the
    current simulation time.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list = []
        self._value = _PENDING
        self._ok = True
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event has fired and its callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self):
        """The event's payload; raises if the event has not triggered."""
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        # Sentinel check inlined (not via .triggered): succeed() runs
        # once per scheduled event and the property adds measurable cost.
        if self._value is not _PENDING:
            raise RuntimeError("event has already been triggered")
        self._ok = True
        self._value = value
        # Engine.schedule(self) unrolled — one Python call per trigger
        # adds up across the tens of thousands of events in a run.
        engine = self.engine
        heapq.heappush(engine._queue,
                       (engine._now, engine._sequence, self))
        engine._sequence += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._value is not _PENDING:
            raise RuntimeError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Field init is inlined (no super() chain): timeouts are the
        # most-constructed event type in the simulator by far.
        self.engine = engine
        self.callbacks = []
        self._processed = False
        self.delay = delay
        self._ok = True
        self._value = value
        heapq.heappush(engine._queue,
                       (engine._now + delay, engine._sequence, self))
        engine._sequence += 1


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("events", "_pending")

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(Event):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]):
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            if event.processed:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class _Pending:
    """Sentinel type for an event value that has not been set."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pending>"


_PENDING = _Pending()
