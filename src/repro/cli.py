"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``train``   — train A3C on a simulated Atari game (optionally the
  LSTM variant), with checkpointing.  ``--trace out.json`` /
  ``--metrics out.jsonl`` capture a Chrome/Perfetto trace and metric
  snapshots through :mod:`repro.obs`.
* ``compare`` — the Figure 8/9 platform comparison.
* ``ablate``  — the Figure 10 configuration ablation.
* ``tables``  — print Tables 1-4 from the implemented models.
* ``card``    — the calibration model card with live anchor checks.
* ``sweep``   — the paper's per-game learning-rate tuning protocol.
* ``obs-report`` — summarise a previous run's ``--metrics`` /
  ``--trace`` files (utilisation, DRAM traffic, step rates, cycle
  attribution), optionally re-exporting a folded flamegraph profile;
  ``--run <id>`` renders a run directory instead (merged tables,
  per-worker breakdown, health events).
* ``bench``   — the perf-baseline gate: ``--baseline`` snapshots IPS +
  cycle-attribution shares per scenario into ``BENCH_fa3c.json``;
  ``--check`` re-runs the scenarios and exits non-zero on regression.
  ``--latency`` records the modelled per-request latency distribution
  (HDR buckets + p50/p99/p999) into ``BENCH_latency.json`` with an
  informational p99 gate.
* ``runs``    — run-directory tooling (:mod:`repro.obs.runlog`):
  ``runs list`` tabulates recorded runs, ``runs diff <a> <b>`` reports
  metric and scenario deltas between two runs.
* ``lint``    — invariant-aware static analysis (:mod:`repro.lint`):
  determinism, hot-path hygiene, seqlock protocol, fp32 reduction
  order, attribution coverage.  ``--strict`` exits non-zero on
  findings; ``--format json`` for machines.
"""

from __future__ import annotations

import argparse
import sys
import typing
import warnings

from repro.ale import GAME_NAMES, make_game
from repro.core import A3CConfig, A3CTrainer, RecurrentA3CAgent
from repro.envs import make_atari_env
from repro.harness import format_curve, format_series, format_table
from repro.nn.checkpoint import save_checkpoint
from repro.nn.network import A3CNetwork
from repro.nn.network_lstm import lstm_a3c_network


def _build_trainer(args) -> A3CTrainer:
    num_actions = make_game(args.game).action_space.n

    def env_factory(agent_id: int):
        return make_atari_env(make_game(args.game),
                              max_episode_steps=args.episode_cap)

    config = A3CConfig(num_agents=args.agents, t_max=args.t_max,
                       learning_rate=args.learning_rate,
                       anneal_steps=args.anneal_steps,
                       max_steps=args.steps, seed=args.seed)
    if args.lstm:
        return A3CTrainer(env_factory,
                          lambda: lstm_a3c_network(num_actions),
                          config, agent_class=RecurrentA3CAgent,
                          platform=args.platform)
    return A3CTrainer(env_factory, lambda: A3CNetwork(num_actions),
                      config, platform=args.platform)


def _open_runlog(args, command: str, **meta):
    """A :class:`repro.obs.runlog.RunLog` for this invocation (or None).

    Disabled by ``--no-runlog``; the root honours ``--runs-root`` and
    the ``REPRO_RUNS_DIR`` environment override.
    """
    if getattr(args, "no_runlog", False):
        return None
    from repro.obs import runlog as runlog_mod

    return runlog_mod.RunLog.open(
        command, argv=list(sys.argv[1:]),
        platform=getattr(args, "platform", None),
        seed=getattr(args, "seed", None),
        root=getattr(args, "runs_root", None), **meta)


def cmd_train(args) -> int:
    observing = bool(args.trace or args.metrics or args.folded)
    if observing:
        from repro import obs
        obs.enable(reset=True)
    trainer = _build_trainer(args)
    variant = "A3C-LSTM" if args.lstm else "A3C"
    actors = args.actors
    if args.backend is not None:
        warnings.warn("--backend is deprecated; use --actors (the "
                      "'backend' name now means the compute platform — "
                      "see --platform)", DeprecationWarning, stacklevel=2)
        print("note: --backend is deprecated, use --actors",
              file=sys.stderr)
        if actors is None:
            actors = args.backend
    if actors is None and args.serial:
        actors = "serial"
    runlog = _open_runlog(
        args, "train",
        config={"game": args.game, "steps": args.steps,
                "agents": args.agents, "t_max": args.t_max,
                "learning_rate": args.learning_rate,
                "actors": actors, "workers": args.workers,
                "lstm": args.lstm},
        topology={"variant": variant,
                  "params": trainer.server.params.names()})
    print(f"Training {variant} on {args.game}: {args.agents} agents, "
          f"{args.steps} steps, lr {args.learning_rate}"
          + (f", actors {actors}" if actors else "")
          + (f", platform {args.platform}" if args.platform else ""))
    result = trainer.train(
        threads=not args.serial,
        actors=actors,
        workers=args.workers,
        progress=lambda step, tracker: print(
            f"  step {step:>8}: episodes={len(tracker)} "
            f"mean={tracker.recent_mean(100):.1f}"),
        progress_interval=max(args.steps // 10, 1),
        runlog=runlog)
    steps, scores = result.tracker.curve()
    print(format_curve(steps, scores, args.game))
    print(f"{result.global_steps} steps, {result.episodes} episodes, "
          f"{result.steps_per_second:.0f} steps/s")
    if args.checkpoint:
        save_checkpoint(args.checkpoint, result.params,
                        optimizer=trainer.server.optimizer,
                        metadata={"game": args.game,
                                  "global_step": result.global_steps,
                                  "lstm": args.lstm})
        print(f"checkpoint written to {args.checkpoint}")
    if observing:
        _emit_observability(args)
    if runlog is not None:
        if observing:
            # After _emit_observability so the parent shard carries the
            # shadow-sim platform metrics alongside the trainer's.
            runlog.shard("main").flush(
                final=True, routines=result.routines,
                global_step=result.global_steps)
        runlog.finish(outcome="ok", global_steps=result.global_steps,
                      episodes=result.episodes,
                      train_wall_seconds=result.wall_seconds)
        print(f"run log: {runlog.path}")
    return 0


def _emit_observability(args) -> None:
    """Write the ``--trace`` / ``--metrics`` outputs for one run.

    Alongside the trainer's wall-clock metrics this runs a short shadow
    simulation of the selected ``--platform`` backend (default FA3C) at
    the same agent count / t_max, so the exported trace carries the
    accelerator-side sim lanes (per-CU stages, DRAM channels) and the
    metrics include per-CU busy fraction and per-channel DRAM bytes
    next to the trainer step-rate histograms.
    """
    from repro import backends, obs
    from repro.platforms import measure_ips

    num_actions = make_game(args.game).action_space.n
    topology = A3CNetwork(num_actions).topology()
    backend = backends.create(args.platform or backends.DEFAULT_BACKEND,
                              topology)
    measure_ips(backend, args.agents,
                t_max=args.t_max, routines_per_agent=8)
    meta = {"game": args.game, "agents": args.agents,
            "t_max": args.t_max, "steps": args.steps,
            "platform": backend.registry_name}
    if args.metrics:
        samples = obs.metrics().write_jsonl(args.metrics, meta=meta)
        print(f"metrics: {samples} samples -> {args.metrics}")
    if args.trace:
        spans = obs.write_chrome_trace(args.trace, obs.tracer(),
                                       meta=meta)
        print(f"trace: {spans} spans -> {args.trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.folded:
        from repro.obs.prof import AttributionReport, write_folded
        report = AttributionReport.from_registry(obs.metrics())
        lines = write_folded(report, args.folded)
        print(f"folded profile: {lines} stacks -> {args.folded} "
              f"(open in speedscope.app or flamegraph.pl)")
    print()
    print(obs.registry_report(obs.metrics()))


def _obs_report_run(args) -> int:
    """Render a run directory: merged tables, workers, health events."""
    from repro import obs
    from repro.obs import health as health_mod
    from repro.obs import runlog as runlog_mod

    try:
        run_dir = runlog_mod.resolve_run(args.run, root=args.runs_root)
        merged = runlog_mod.merge_run(run_dir)
    except (OSError, ValueError) as exc:
        print(f"obs-report: {exc}")
        return 2
    events = health_mod.health_events(merged)
    runlog_mod.write_health(run_dir, events)
    if args.folded:
        from repro.obs.prof import AttributionReport, write_folded
        report = AttributionReport(
            runlog_mod.aggregate_rows(merged.rows))
        if report.has_fpga or report.has_gpu:
            lines = write_folded(report, args.folded)
            print(f"folded profile: {lines} stacks -> {args.folded}")
        else:
            print("obs-report: no attribution metrics in the run; "
                  "--folded skipped")
    print(obs.run_report(merged, events, latency=args.latency))
    return 0


def cmd_obs_report(args) -> int:
    from repro import obs

    if args.run:
        return _obs_report_run(args)
    if not args.metrics and not args.trace:
        print("obs-report needs --run, or --metrics and/or --trace")
        return 2
    try:
        rows = obs.load_jsonl(args.metrics) if args.metrics else []
        doc = obs.load_chrome_trace(args.trace) if args.trace else None
    except OSError as exc:
        print(f"obs-report: cannot read {exc.filename}: {exc.strerror}")
        return 2
    if args.folded:
        from repro.obs.prof import AttributionReport, write_folded
        report = AttributionReport(rows)
        if not (report.has_fpga or report.has_gpu):
            print("obs-report: no attribution metrics in the input; "
                  "--folded needs a run recorded with profiling on")
            return 2
        lines = write_folded(report, args.folded)
        print(f"folded profile: {lines} stacks -> {args.folded}")
    print(obs.obs_report(rows, doc, latency=args.latency))
    return 0


def cmd_backends_list(args) -> int:
    """Tabulate every registered backend with its capability surface."""
    del args
    from repro import backends

    def flag(value: bool) -> str:
        return "yes" if value else "no"

    rows = []
    for name in backends.names():
        backend = backends.create(name)
        caps = backend.capabilities
        rows.append({
            "backend": name,
            "display": backend.name,
            "kind": caps.kind,
            "precision": caps.precision,
            "sync": flag(caps.needs_sync),
            "bootstrap": flag(caps.needs_bootstrap),
            "batched": flag(caps.batched_inference),
            "tracing": flag(caps.supports_tracing),
        })
    print(format_table(rows))
    return 0


def cmd_bench(args) -> int:
    from repro.obs.prof import baseline as bench

    modes = sum(1 for mode in (args.wallclock, args.latency,
                               args.ablation) if mode)
    if modes > 1:
        print("bench: --wallclock, --latency, and --ablation are "
              "mutually exclusive")
        return 2
    runlog = _open_runlog(args, "bench",
                          wallclock=bool(args.wallclock),
                          latency=bool(args.latency),
                          ablation=args.ablation or "")
    if args.ablation:
        code = _cmd_bench_ablation(args, runlog)
    elif args.wallclock:
        code = _cmd_bench_wallclock(args, bench, runlog)
    elif args.latency:
        code = _cmd_bench_latency(args, bench, runlog)
    else:
        code = _cmd_bench_modelled(args, bench, runlog)
    if runlog is not None:
        runlog.finish(outcome={0: "ok", 1: "regression"}.get(
            code, "error"))
        print(f"run log: {runlog.path}")
    return code


def _cmd_bench_ablation(args, runlog=None) -> int:
    """Accuracy vs modelled IPS vs modelled energy per precision."""
    from repro.power.ablation import precision_ablation

    rows = precision_ablation()
    print(format_table(rows, title="precision ablation (FA3C, 8 agents)"))
    if runlog is not None:
        runlog.update(ablation={"precision": rows})
    return 0


def _cmd_bench_modelled(args, bench, runlog=None) -> int:
    if args.file is None:
        args.file = bench.DEFAULT_BASELINE
    names = list(args.scenarios) if args.scenarios else None
    base = None
    if args.check:
        try:
            base = bench.load_snapshot(args.file)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline {args.file}: {exc}")
            return 2
        if names is None:
            names = sorted(base.get("scenarios") or {})
    if names is None:
        names = bench.scenario_names(backend=args.platform)
    elif args.platform:
        allowed = set(bench.scenario_names(backend=args.platform))
        names = [name for name in names if name in allowed]

    failures: typing.List[str] = []
    scenarios: typing.Dict[str, typing.Dict[str, object]] = {}
    for name in names:
        try:
            entry, report = bench.run_scenario(name)
        except ValueError as exc:
            failures.append(str(exc))
            continue
        scenarios[name] = entry
        buckets = " ".join(f"{bucket}={share:.3f}" for bucket, share
                           in entry["buckets"].items())
        print(f"{name}: ips={entry['ips']:.1f} {buckets}")
        if args.report_dir:
            _write_bench_report(args.report_dir, name, report)

    current = {
        "version": bench.SNAPSHOT_VERSION,
        "tolerances": {
            "ips_rtol": args.ips_tolerance
            if args.ips_tolerance is not None else bench.DEFAULT_IPS_RTOL,
            "share_atol": args.share_tolerance
            if args.share_tolerance is not None
            else bench.DEFAULT_SHARE_ATOL,
        },
        "scenarios": scenarios,
    }
    if runlog is not None:
        runlog.update(scenarios=scenarios,
                      tolerances=current["tolerances"])
    if args.baseline:
        bench.write_snapshot(current, args.file)
        print(f"baseline: {len(scenarios)} scenarios -> {args.file}")
    if args.check:
        compare = base
        if args.scenarios or args.platform:
            # Only gate the requested subset; flag requested scenarios
            # the baseline has never recorded.
            recorded = base.get("scenarios") or {}
            for name in names:
                if name not in recorded:
                    failures.append(f"{name}: not in baseline "
                                    f"{args.file}")
            compare = dict(base)
            compare["scenarios"] = {name: entry for name, entry
                                    in recorded.items()
                                    if name in set(names)}
        failures.extend(bench.check_snapshot(
            compare, current, ips_rtol=args.ips_tolerance,
            share_atol=args.share_tolerance))
        if failures:
            print(f"\nPERF GATE FAILED ({len(failures)} finding(s)):")
            for failure in failures:
                print(f"  - {failure}")
            print("If the change is intentional, refresh the snapshot "
                  "with `repro bench --baseline`.")
            return 1
        print(f"\nperf gate OK: {len(scenarios)} scenarios within "
              "tolerance of " + str(args.file))
    return 0


def _cmd_bench_wallclock(args, bench, runlog=None) -> int:
    """Host-time bench: routines/sec per scenario, loose gate.

    Unlike the modelled-IPS gate this measures wall clock, so the check
    is informational with a wide tolerance (see
    ``DEFAULT_WALLCLOCK_RTOL``) — CI treats it as a smoke signal, not a
    hard gate.
    """
    path = args.file or bench.DEFAULT_WALLCLOCK_BASELINE
    names = list(args.scenarios) if args.scenarios else None
    base = None
    if args.check:
        try:
            base = bench.load_wallclock(path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load wall-clock baseline {path}: "
                  f"{exc}")
            return 2
        if names is None:
            names = sorted(base.get("scenarios") or {})
    if names is None and args.platform:
        names = bench.scenario_names(backend=args.platform)
    elif names is not None and args.platform:
        allowed = set(bench.scenario_names(backend=args.platform))
        names = [name for name in names if name in allowed]

    failures: typing.List[str] = []
    try:
        current = bench.collect_wallclock(names, repeats=args.repeats)
    except ValueError as exc:
        print(f"bench: {exc}")
        return 2
    for name, entry in current["scenarios"].items():
        print(f"{name}: {entry['routines_per_second']:.1f} routines/s "
              f"({entry['wall_seconds']:.4f}s)")
    print(f"total: {current['total_wall_seconds']:.4f}s")
    if runlog is not None:
        runlog.update(scenarios=current["scenarios"],
                      total_wall_seconds=current["total_wall_seconds"])

    if args.baseline:
        bench.write_snapshot(current, path)
        print(f"wall-clock baseline: "
              f"{len(current['scenarios'])} scenarios -> {path}")
    if args.check:
        compare = base
        if names is not None:
            # Only gate the requested subset; flag requested scenarios
            # the baseline has never recorded.
            recorded = base.get("scenarios") or {}
            for name in names:
                if name not in recorded:
                    failures.append(f"{name}: not in baseline {path}")
            compare = dict(base)
            compare["scenarios"] = {name: entry for name, entry
                                    in recorded.items()
                                    if name in set(names)}
        failures.extend(bench.check_wallclock(compare, current))
        if failures:
            print(f"\nWALL-CLOCK SMOKE FAILED ({len(failures)} "
                  "finding(s)):")
            for failure in failures:
                print(f"  - {failure}")
            print("Wall clock is host-dependent; refresh with "
                  "`repro bench --wallclock --baseline` if the "
                  "hardware or the intended performance changed.")
            return 1
        print(f"\nwall-clock smoke OK: "
              f"{len(current['scenarios'])} scenarios within "
              f"tolerance of {path}")
    return 0


def _cmd_bench_latency(args, bench, runlog=None) -> int:
    """Latency bench: modelled per-request distribution per scenario.

    Sim-time latencies are deterministic, so the committed HDR bucket
    counts diff bit-for-bit; the p99 check is still informational with
    a wide tolerance (see ``DEFAULT_LATENCY_RTOL``) because a one-bucket
    quantisation shift can move a percentile by ~12 %.
    """
    path = args.file or bench.DEFAULT_LATENCY_BASELINE
    names = list(args.scenarios) if args.scenarios else None
    base = None
    if args.check:
        try:
            base = bench.load_latency(path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load latency baseline {path}: {exc}")
            return 2
        if names is None:
            names = sorted(base.get("scenarios") or {})
    if names is None and args.platform:
        names = bench.scenario_names(backend=args.platform)
    elif names is not None and args.platform:
        allowed = set(bench.scenario_names(backend=args.platform))
        names = [name for name in names if name in allowed]

    failures: typing.List[str] = []
    try:
        current = bench.collect_latency(names)
    except ValueError as exc:
        print(f"bench: {exc}")
        return 2
    for name, entry in current["scenarios"].items():
        print(f"{name}: p50={entry['p50_us']}us p99={entry['p99_us']}us "
              f"p999={entry['p999_us']}us "
              f"({entry['requests']} requests)")
    if runlog is not None:
        runlog.update(scenarios=current["scenarios"],
                      tolerances=current["tolerances"])

    if args.baseline:
        bench.write_snapshot(current, path)
        print(f"latency baseline: {len(current['scenarios'])} "
              f"scenarios -> {path}")
    if args.check:
        compare = base
        if names is not None:
            # Only gate the requested subset; flag requested scenarios
            # the baseline has never recorded.
            recorded = base.get("scenarios") or {}
            for name in names:
                if name not in recorded:
                    failures.append(f"{name}: not in baseline {path}")
            compare = dict(base)
            compare["scenarios"] = {name: entry for name, entry
                                    in recorded.items()
                                    if name in set(names)}
        failures.extend(bench.check_latency(compare, current))
        if failures:
            print(f"\nLATENCY GATE (informational) FAILED "
                  f"({len(failures)} finding(s)):")
            for failure in failures:
                print(f"  - {failure}")
            print("Tail latency moved; if the change is intentional, "
                  "refresh with `repro bench --latency --baseline` "
                  "and review the hdr bucket diff.")
            return 1
        print(f"\nlatency gate OK: "
              f"{len(current['scenarios'])} scenarios within "
              f"tolerance of {path}")
    return 0


def _write_bench_report(report_dir: str, name: str, report) -> None:
    """Per-scenario attribution artifacts for the CI perf-gate upload."""
    import os

    from repro.obs.prof import write_folded

    os.makedirs(report_dir, exist_ok=True)
    write_folded(report, os.path.join(report_dir, f"{name}.folded"))
    sections = []
    if report.has_fpga:
        sections.append(format_table(
            report.layer_rows(), title=f"{name}: cycle attribution by "
                                       "layer/stage"))
        sections.append(format_table(
            report.cu_rows(), title=f"{name}: cycle attribution by CU"))
    if report.has_gpu:
        sections.append(format_table(
            report.gpu_rows(), title=f"{name}: GPU time attribution"))
    with open(os.path.join(report_dir, f"{name}.txt"), "w",
              encoding="utf-8") as handle:
        handle.write("\n\n".join(sections) + "\n")


def cmd_runs_list(args) -> int:
    from repro.obs import runlog as runlog_mod

    rows = runlog_mod.list_runs(args.runs_root)
    if not rows:
        print(f"(no runs under "
              f"{runlog_mod.runs_root(args.runs_root)})")
        return 0
    for row in rows:
        if row["wall_seconds"] is None:
            row["wall_seconds"] = "-"
    print(format_table(rows, title="Recorded runs"))
    return 0


def cmd_runs_diff(args) -> int:
    from repro.obs import runlog as runlog_mod

    try:
        diff = runlog_mod.diff_runs(args.a, args.b,
                                    root=args.runs_root)
    except (OSError, ValueError) as exc:
        print(f"runs diff: {exc}")
        return 2
    print(f"runs diff: a={diff['a']}  b={diff['b']}  (delta = b - a)")
    if diff["scenarios"]:
        print()
        print(format_table(diff["scenarios"],
                           title="Scenario deltas"))
    if diff["metrics"]:
        print()
        print(format_table(diff["metrics"],
                           title="Metric deltas (worker label "
                                 "aggregated out)"))
    if diff.get("latency"):
        print()
        print(format_table(diff["latency"],
                           title="Latency deltas (per segment, ms)"))
    if not diff["scenarios"] and not diff["metrics"]:
        print("(no comparable scenarios or metrics between the runs)")
    return 0


def cmd_lint(args) -> int:
    from repro import lint
    from repro.lint import report as lint_report

    try:
        config = lint.load_config(args.config)
    except (OSError, ValueError) as exc:
        print(f"lint: cannot load config: {exc}")
        return 2
    paths = args.paths or config.paths
    # The cache is on for incremental runs (or when --cache names a
    # path explicitly) and off otherwise, so a plain `repro lint`
    # leaves no state behind; --no-cache wins over everything.
    cache_path: typing.Optional[str] = args.cache
    if cache_path is None and args.changed:
        cache_path = config.cache_path
    if args.no_cache:
        cache_path = None
    try:
        run = lint.lint_paths(paths, config, select=args.select,
                              changed_only=args.changed,
                              cache_path=cache_path)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}")
        return 2
    if args.why:
        finding = run.find(args.why)
        if finding is None:
            print(f"lint: no finding with id {args.why!r} in this run "
                  f"({len(run.findings)} finding(s) present)")
            return 2
        print(lint_report.render_why(finding))
        return 0
    if args.format == "json":
        print(lint_report.render_json(run))
    else:
        print(lint_report.render_text(run, verbose=args.verbose))
    if run.errors:
        return 2
    if args.strict and run.findings:
        return 1
    return 0


def cmd_compare(args) -> int:
    from repro import backends
    from repro.platforms import measure_ips, sweep_agents
    from repro.power import PowerModel

    topology = A3CNetwork(num_actions=6).topology()
    platforms = [backends.create(name, topology)
                 for name in ("fa3c-fpga", "a3c-cudnn", "ga3c-tf",
                              "a3c-tf-gpu", "a3c-tf-cpu")]
    agents = tuple(args.agents_sweep)
    series = {}
    for platform in platforms:
        results = sweep_agents(platform, agents, routines_per_agent=30)
        series[results[0].platform] = [round(r.ips) for r in results]
    print(format_series(agents, series,
                        title="Figure 8: IPS vs number of agents"))
    results16 = [measure_ips(p, 16, routines_per_agent=25)
                 for p in platforms]
    print()
    print(format_table(PowerModel().figure9(results16),
                       columns=["platform", "watts", "ips_per_watt",
                                "relative_power", "relative_efficiency"],
                       title="Figure 9: power and efficiency at n=16"))
    return 0


def cmd_ablate(args) -> int:
    from repro import backends
    from repro.platforms import sweep_agents

    topology = A3CNetwork(num_actions=6).topology()
    agents = tuple(args.agents_sweep)
    variants = {
        "FA3C": backends.create("fa3c-fpga", topology, cu_pairs=1),
        "FA3C-Alt1": backends.create("fa3c-alt1", topology, cu_pairs=1),
        "FA3C-Alt2": backends.create("fa3c-alt2", topology, cu_pairs=1),
        "FA3C-SingleCU": backends.create("fa3c-single-cu", topology,
                                         cu_pairs=1),
    }
    series = {}
    for name, platform in variants.items():
        results = sweep_agents(platform, agents, routines_per_agent=25)
        series[name] = [round(r.ips) for r in results]
    print(format_series(agents, series,
                        title="Figure 10: FA3C configurations "
                              "(1 CU pair)"))
    return 0


def cmd_tables(args) -> int:
    del args
    from repro.analysis import line_buffer_table, traffic_table
    from repro.fpga.resources import resource_table

    topology = A3CNetwork(num_actions=6).topology()
    print(format_table(topology.table1_rows(),
                       title="Table 1: A3C DNN layers"))
    print()
    print(format_table(traffic_table(topology).rows(),
                       title="Table 2: off-chip traffic per routine"))
    print()
    rows = []
    for layer, plans in line_buffer_table(topology).items():
        for plan in plans:
            rows.append({"layer": layer, "stage": plan.stage,
                         "port": plan.port, "width": plan.width,
                         "count": plan.count})
    print(format_table(rows, title="Table 3: line buffers"))
    print()
    print(format_table(resource_table(),
                       title="Table 4: VU9P resources"))
    return 0


def cmd_card(args) -> int:
    del args
    from repro.analysis import model_card_rows

    topology = A3CNetwork(num_actions=6).topology()
    print(format_table(model_card_rows(topology),
                       title="Calibration model card (anchors from the "
                             "paper, checks computed live)"))
    return 0


def cmd_sweep(args) -> int:
    from repro.core.sweep import sweep_learning_rates

    num_actions = make_game(args.game).action_space.n
    config = A3CConfig(num_agents=args.agents, t_max=args.t_max,
                       max_steps=args.steps, anneal_steps=10 ** 9,
                       seed=args.seed)
    runlog = _open_runlog(
        args, "sweep",
        config={"game": args.game, "steps": args.steps,
                "agents": args.agents, "t_max": args.t_max,
                "rates": list(args.rates), "seeds": args.seeds})
    result = sweep_learning_rates(
        lambda i: make_atari_env(make_game(args.game),
                                 max_episode_steps=args.episode_cap),
        lambda: A3CNetwork(num_actions), config,
        learning_rates=args.rates, seeds=tuple(range(args.seeds)),
        threads=True, platform=args.platform)
    print(format_table(result.rows(),
                       title=f"Learning-rate sweep on {args.game} "
                             f"({args.steps} steps/run)"))
    best = result.best
    print(f"best: lr={best.learning_rate} (seed {best.seed}), "
          f"final score {best.final_score:.1f}")
    if runlog is not None:
        runlog.finish(outcome="ok", best_rate=best.learning_rate,
                      best_seed=best.seed,
                      best_final_score=best.final_score)
        print(f"run log: {runlog.path}")
    return 0


def _add_runlog_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-runlog", action="store_true",
                        help="do not record this invocation under the "
                             "runs directory")
    parser.add_argument("--runs-root", default=None,
                        help="run-directory root (default: runs/, or "
                             "$REPRO_RUNS_DIR)")


def build_parser() -> argparse.ArgumentParser:
    from repro import backends

    backend_names = list(backends.names())
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FA3C (ASPLOS 2019) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train A3C on a simulated game")
    train.add_argument("--game", choices=GAME_NAMES, default="breakout")
    train.add_argument("--steps", "--max-steps", dest="steps",
                       type=int, default=20_000)
    train.add_argument("--agents", type=int, default=4)
    train.add_argument("--t-max", type=int, default=5)
    train.add_argument("--learning-rate", type=float, default=7e-4)
    train.add_argument("--anneal-steps", type=int, default=100_000_000)
    train.add_argument("--episode-cap", type=int, default=1500)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument("--lstm", action="store_true",
                       help="use the A3C-LSTM variant")
    train.add_argument("--serial", action="store_true",
                       help="deterministic round-robin agents")
    train.add_argument("--actors", choices=["threads", "procs", "serial"],
                       default=None,
                       help="actor execution model (default: threads, "
                            "or serial when --serial is given)")
    # Deprecated alias of --actors, kept for old scripts; hidden so the
    # name no longer collides with the compute-backend registry.
    train.add_argument("--backend",
                       choices=["threads", "procs", "serial"],
                       default=None, help=argparse.SUPPRESS)
    train.add_argument("--platform", choices=backend_names,
                       default=None,
                       help="compute backend from the repro.backends "
                            "registry (default: fa3c-fpga)")
    train.add_argument("--workers", type=int, default=None,
                       help="worker processes for --actors procs "
                            "(default: one per agent)")
    train.add_argument("--checkpoint", default=None,
                       help="write final parameters to this .npz")
    train.add_argument("--trace", default=None,
                       help="write a Chrome/Perfetto trace JSON here")
    train.add_argument("--metrics", default=None,
                       help="write metric snapshots (JSONL) here")
    train.add_argument("--folded", default=None,
                       help="write a folded flamegraph profile here")
    _add_runlog_arguments(train)
    train.set_defaults(func=cmd_train)

    compare = sub.add_parser("compare",
                             help="Figure 8/9 platform comparison")
    compare.add_argument("--agents-sweep", type=int, nargs="+",
                         default=[1, 2, 4, 8, 16, 32])
    compare.set_defaults(func=cmd_compare)

    ablate = sub.add_parser("ablate", help="Figure 10 ablation")
    ablate.add_argument("--agents-sweep", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16])
    ablate.set_defaults(func=cmd_ablate)

    tables = sub.add_parser("tables", help="print Tables 1-4")
    tables.set_defaults(func=cmd_tables)

    card = sub.add_parser("card",
                          help="print the calibration model card")
    card.set_defaults(func=cmd_card)

    sweep = sub.add_parser("sweep", help="learning-rate sweep")
    sweep.add_argument("--game", choices=GAME_NAMES, default="breakout")
    sweep.add_argument("--steps", type=int, default=10_000)
    sweep.add_argument("--agents", type=int, default=4)
    sweep.add_argument("--t-max", type=int, default=5)
    sweep.add_argument("--episode-cap", type=int, default=1500)
    sweep.add_argument("--seeds", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--rates", type=float, nargs="+",
                       default=[1e-4, 7e-4, 3e-3])
    sweep.add_argument("--platform", choices=backend_names,
                       default=None,
                       help="compute backend from the repro.backends "
                            "registry (default: fa3c-fpga)")
    _add_runlog_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    obs_report = sub.add_parser(
        "obs-report",
        help="summarise --metrics/--trace files from a previous run")
    obs_report.add_argument("--metrics", default=None,
                            help="metrics JSONL from `train --metrics`")
    obs_report.add_argument("--trace", default=None,
                            help="Chrome trace JSON from `train --trace`")
    obs_report.add_argument("--folded", default=None,
                            help="re-export the metrics' cycle "
                                 "attribution as a folded profile here")
    obs_report.add_argument("--run", default=None,
                            help="render a run directory instead: a run "
                                 "id (or unique fragment) under the "
                                 "runs root, or a path")
    obs_report.add_argument("--runs-root", default=None,
                            help="run-directory root (default: runs/, "
                                 "or $REPRO_RUNS_DIR)")
    obs_report.add_argument("--latency", action="store_true",
                            help="include the latency tables: per-"
                                 "segment percentiles (queue vs "
                                 "compute) and end-to-end routine "
                                 "latency")
    obs_report.set_defaults(func=cmd_obs_report)

    bench = sub.add_parser(
        "bench",
        help="perf-baseline gate over the scenario matrix")
    bench.add_argument("--baseline", action="store_true",
                       help="write the measured snapshot to --file")
    bench.add_argument("--check", action="store_true",
                       help="diff against --file; non-zero exit on "
                            "regression")
    bench.add_argument("--wallclock", action="store_true",
                       help="measure host-side wall clock instead of "
                            "modelled IPS (loose, informational gate)")
    bench.add_argument("--latency", action="store_true",
                       help="record the modelled per-request latency "
                            "distribution instead of IPS "
                            "(informational p99 gate)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="wall-clock repeats per scenario; best-of "
                            "is recorded (default: 3)")
    bench.add_argument("--file", default=None,
                       help="baseline snapshot path (default: "
                            "BENCH_fa3c.json; BENCH_wallclock.json "
                            "with --wallclock; BENCH_latency.json "
                            "with --latency)")
    bench.add_argument("--scenarios", nargs="+", default=None,
                       help="subset of scenario names to run")
    bench.add_argument("--platform", choices=backend_names,
                       default=None,
                       help="only run scenarios of this backend "
                            "(registry name, e.g. fa3c-fpga)")
    bench.add_argument("--ips-tolerance", type=float, default=None,
                       help="allowed relative IPS drop (overrides the "
                            "baseline's tolerance)")
    bench.add_argument("--share-tolerance", type=float, default=None,
                       help="allowed absolute bucket-share drift "
                            "(overrides the baseline's tolerance)")
    bench.add_argument("--report-dir", default=None,
                       help="write per-scenario attribution tables and "
                            "folded profiles here")
    bench.add_argument("--ablation", choices=["precision"],
                       default=None,
                       help="run an ablation study instead of the gate "
                            "(precision: accuracy vs IPS vs energy per "
                            "datapath precision)")
    _add_runlog_arguments(bench)
    bench.set_defaults(func=cmd_bench)

    backends_cmd = sub.add_parser(
        "backends", help="inspect the execution-backend registry")
    backends_sub = backends_cmd.add_subparsers(dest="backends_command",
                                               required=True)
    backends_list = backends_sub.add_parser(
        "list", help="tabulate registered backends and capabilities")
    backends_list.set_defaults(func=cmd_backends_list)

    runs = sub.add_parser(
        "runs", help="list and diff recorded run directories")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="tabulate every run under the runs root")
    runs_list.add_argument("--runs-root", default=None,
                           help="run-directory root (default: runs/, "
                                "or $REPRO_RUNS_DIR)")
    runs_list.set_defaults(func=cmd_runs_list)
    runs_diff = runs_sub.add_parser(
        "diff", help="metric/scenario deltas between two runs (b - a)")
    runs_diff.add_argument("a", help="baseline run id or path")
    runs_diff.add_argument("b", help="comparison run id or path")
    runs_diff.add_argument("--runs-root", default=None,
                           help="run-directory root (default: runs/, "
                                "or $REPRO_RUNS_DIR)")
    runs_diff.set_defaults(func=cmd_runs_diff)

    lint = sub.add_parser(
        "lint",
        help="invariant-aware static analysis (repro.lint)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: the "
                           "configured paths, normally src)")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero when any finding survives "
                           "pragma suppression")
    lint.add_argument("--select", nargs="+", default=None,
                      metavar="RULE",
                      help="run only these rules (default: the "
                           "configured select list)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text",
                      help="report format (default: text)")
    lint.add_argument("--config", default=None,
                      help="pyproject.toml to read [tool.repro-lint] "
                           "from (default: nearest one upward from .)")
    lint.add_argument("--changed", action="store_true",
                      help="incremental run: re-analyse only files "
                           "whose content changed since the cached "
                           "run, plus their reverse-dependency cone")
    lint.add_argument("--cache", default=None, metavar="PATH",
                      help="on-disk result cache (default with "
                           "--changed: the configured cache-path, "
                           "normally .repro-lint-cache.json)")
    lint.add_argument("--no-cache", action="store_true",
                      help="never read or write the result cache")
    lint.add_argument("--why", default=None, metavar="ID",
                      help="explain one finding from this run by its "
                           "id (prefix accepted): message plus the "
                           "full call/import chain")
    lint.add_argument("--verbose", action="store_true",
                      help="also list pragma-skipped files and "
                           "per-rule timing")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
