"""The ``@hot_path`` marker.

A pure annotation — it returns the function unchanged (zero call
overhead) and exists so humans and ``repro lint`` agree on which
functions are performance-critical.  The lint rule ``hot-path``
enforces the discipline inside marked functions: telemetry, string
building, wall-clock reads, and per-iteration allocation must sit
behind the ``REPRO_OBS`` gate (see ``docs/static-analysis.md``).

Mark *leaf* inner functions — one PE reduction, one DRAM transfer, one
parameter sync — not whole orchestration loops, whose functional use of
timers and batch allocation would drown the rule in pragmas.  Functions
that cannot import this module (or third-party code) can be marked by
dotted name in ``[tool.repro-lint.hot-path] functions`` instead.

This module must stay import-light: the files that use the marker are
themselves the innermost of the codebase.
"""

from __future__ import annotations

import typing

F = typing.TypeVar("F", bound=typing.Callable)


def hot_path(func: F) -> F:
    """Mark ``func`` as a hot path for ``repro lint`` (no-op at runtime)."""
    func.__repro_hot_path__ = True      # type: ignore[attr-defined]
    return func
