"""Memoized stage plans keyed on (topology, batch, direction, config).

A *stage plan* is everything :class:`repro.fpga.platform.FPGASim` needs
to execute one :class:`~repro.fpga.timing.StageTiming` — compute
seconds, per-channel DMA hold durations, byte/burst counter increments,
and the cycle-attribution template — precomputed with exactly the same
arithmetic the simulator's per-stage derivation path uses, so replaying
a plan is bit-identical to re-deriving it.

Plans are pure data: they reference no engine, resources, or metric
objects, so one global :data:`CACHE` is shared by every simulator
instance.  The cache key covers every :class:`FPGAConfig` field that
feeds the timing model (the key is recomputed from the live config at
each task launch, so in-place config mutation naturally misses) plus the
frozen, hashable :class:`~repro.nn.network.NetworkTopology`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.fpga.timing import GLOBAL, LOCAL, StageTiming
from repro.obs.prof import buckets as _prof

ConfigKey = typing.Tuple

#: FPGAConfig fields that influence modelled stage timing, traffic, or
#: attribution.  ``device`` is capacity metadata and deliberately absent.
#: ``precision`` changes words-per-beat, PE density, and byte accounting,
#: so omitting it would alias quantized and fp32 plans in the cache.
CONFIG_KEY_FIELDS = (
    "name", "clock_hz", "n_pe", "cu_pairs", "single_cu", "layout_mode",
    "dram_efficiency", "double_buffering", "global_channels", "num_rus",
    "pcie_bandwidth", "pcie_latency", "precision",
)


def config_key(config) -> ConfigKey:
    """Hashable tuple of the timing-relevant config fields."""
    return (config.name, config.clock_hz, config.n_pe, config.cu_pairs,
            config.single_cu, config.layout_mode, config.dram_efficiency,
            config.double_buffering, config.global_channels,
            config.num_rus, config.pcie_bandwidth, config.pcie_latency,
            config.precision)


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """One stage's precomputed execution and attribution template."""

    stage: StageTiming
    name: str
    compute_cycles: int
    compute_seconds: float
    #: Local-channel hold duration (0 words -> no hold).
    local_words: int
    local_seconds: float
    #: Per-global-channel striped share (0 words -> no holds).
    global_share_words: int
    global_share_seconds: float
    double_buffering: bool
    # -- attribution template (mirrors obs.prof.buckets exactly) --------
    kind: str
    layer: str
    compute_bucket: str
    work_cycles: int
    overhead_cycles: int
    transform_words: int
    dma_words: int
    #: ``(direction, bytes, bursts)`` rows for the pair-local channel.
    local_traffic: typing.Tuple[typing.Tuple[str, int, int], ...]
    #: ``(direction, bytes, bursts)`` rows applied to *each* global
    #: channel (the striped share, as the derivation path counts it).
    global_traffic: typing.Tuple[typing.Tuple[str, int, int], ...]


@dataclasses.dataclass(frozen=True)
class TaskPlan:
    """A task's stage plans plus its host-link (PCIe) bookends."""

    kind: str
    batch: int
    stages: typing.Tuple[StagePlan, ...]
    pcie_in_seconds: float = 0.0
    pcie_out_seconds: float = 0.0

    @property
    def stage_timings(self) -> typing.Tuple[StageTiming, ...]:
        return tuple(plan.stage for plan in self.stages)


def build_stage_plan(platform, stage: StageTiming) -> StagePlan:
    """Precompute one stage's plan with the simulator's own arithmetic."""
    config = platform.config
    compute_seconds = stage.compute_cycles / config.clock_hz
    local_words = stage.words(LOCAL)
    local_seconds = platform._words_seconds(local_words) \
        if local_words else 0.0
    global_words = stage.words(GLOBAL)
    if global_words:
        share = -(-global_words // config.global_channels)
        global_share_seconds = platform._words_seconds(share)
    else:
        share = 0
        global_share_seconds = 0.0
    kind, layer = _prof.split_stage_name(stage.name)
    overhead = min(stage.overhead_cycles, stage.compute_cycles)
    dma_words = stage.total_load_words + stage.total_store_words
    word_bytes = config.word_bytes
    words_per_beat = config.words_per_beat
    local_traffic = []
    global_traffic = []
    for direction, words_by_channel in (("load", stage.loads),
                                        ("store", stage.stores)):
        words = words_by_channel.get(LOCAL, 0)
        if words:
            local_traffic.append((direction, words * word_bytes,
                                  -(-words // words_per_beat)))
        words = words_by_channel.get(GLOBAL, 0)
        if words:
            dir_share = -(-words // config.global_channels)
            global_traffic.append((direction, dir_share * word_bytes,
                                   -(-dir_share // words_per_beat)))
    return StagePlan(
        stage=stage,
        name=stage.name,
        compute_cycles=stage.compute_cycles,
        compute_seconds=compute_seconds,
        local_words=local_words,
        local_seconds=local_seconds,
        global_share_words=share,
        global_share_seconds=global_share_seconds,
        double_buffering=config.double_buffering,
        kind=kind,
        layer=layer,
        compute_bucket=_prof.compute_bucket(kind),
        work_cycles=stage.compute_cycles - overhead,
        overhead_cycles=overhead,
        transform_words=min(stage.transform_words, dma_words),
        dma_words=dma_words,
        local_traffic=tuple(local_traffic),
        global_traffic=tuple(global_traffic),
    )


def build_task_plan(platform, kind: str, batch: int) -> TaskPlan:
    """Derive a full task's plan from the platform's timing model."""
    timing = platform.timing
    config = platform.config
    pcie_in = pcie_out = 0.0
    if kind == "inference":
        stages = timing.inference_task(batch)
        pcie_in = config.pcie_latency \
            + batch * timing.input_words(1) * config.word_bytes \
            / config.pcie_bandwidth
        last = platform.topology.layers[-1]
        pcie_out = config.pcie_latency \
            + batch * last.num_outputs * config.word_bytes \
            / config.pcie_bandwidth
    elif kind == "train":
        stages = timing.training_task(batch)
    elif kind == "sync":
        stages = timing.sync_task()
    else:
        raise ValueError(f"unknown task kind {kind!r}")
    return TaskPlan(kind=kind, batch=batch,
                    stages=tuple(build_stage_plan(platform, stage)
                                 for stage in stages),
                    pcie_in_seconds=pcie_in, pcie_out_seconds=pcie_out)


class PlanCache:
    """Global (config, topology, kind, batch) -> :class:`TaskPlan` map."""

    def __init__(self):
        self._plans: typing.Dict[tuple, TaskPlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def task_plan(self, platform, kind: str, batch: int,
                  cfg_key: typing.Optional[ConfigKey] = None) -> TaskPlan:
        if cfg_key is None:
            cfg_key = config_key(platform.config)
        key = (kind, batch, cfg_key, platform.topology)
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = build_task_plan(platform, kind, batch)
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide plan cache (plans are immutable pure data).
CACHE = PlanCache()


def task_plan(platform, kind: str, batch: int) -> TaskPlan:
    """Convenience accessor on the global :data:`CACHE`."""
    return CACHE.task_plan(platform, kind, batch)
