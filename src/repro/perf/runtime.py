"""The fast-path switch.

Mirrors :mod:`repro.obs.runtime`: a module-level boolean checked once per
task, seeded from the ``REPRO_FASTPATH`` environment variable.  Unlike
observability the fast path defaults to **on** — it is semantics
preserving by construction and verified bit-exact by the perf gate.
Disabling it (``REPRO_FASTPATH=0``) routes the FPGA simulator through
the original per-stage derivation path, which the equivalence tests use
as the reference.
"""

from __future__ import annotations

import contextlib
import os

_FALSE = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() \
        not in _FALSE


_enabled = _env_enabled()


def enabled() -> bool:
    """True when simulators should replay memoized stage plans."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


@contextlib.contextmanager
def disabled_scope():
    """Temporarily run on the legacy (re-deriving) path.

    Used by the equivalence tests to produce reference results::

        with perf_runtime.disabled_scope():
            reference = measure_ips(platform, 8)
    """
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


@contextlib.contextmanager
def enabled_scope():
    """Temporarily force the fast path on (for A/B benchmarks)."""
    global _enabled
    previous = _enabled
    _enabled = True
    try:
        yield
    finally:
        _enabled = previous
