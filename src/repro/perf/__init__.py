"""Wall-clock fast path: memoized stage plans for the simulators.

``repro.perf`` makes the harness faster **without changing any modelled
number**.  The discrete-event FPGA simulator re-derives identical stage
schedules, DMA plans, and attribution templates on every routine even
though they are pure functions of (topology, batch, direction, platform
config); :mod:`repro.perf.stageplan` computes them once and lets
:class:`repro.fpga.platform.FPGASim` replay them.

The fast path is on by default and can be disabled for A/B verification
with ``REPRO_FASTPATH=0`` (or :func:`repro.perf.runtime.disable`); the
``repro bench --check`` gate against ``BENCH_fa3c.json`` is the
correctness harness proving both paths produce bit-identical IPS and
cycle attribution.

``stageplan`` imports the FPGA timing model, which imports platform
modules that themselves consult this package — so its names are exposed
lazily (PEP 562), like :mod:`repro.obs.prof` does for its heavy
submodules.
"""

from repro.perf.hotpath import hot_path
from repro.perf.runtime import disable, disabled_scope, enable, enabled

#: Names resolved from :mod:`repro.perf.stageplan` on first access.
_STAGEPLAN_NAMES = ("CACHE", "PlanCache", "StagePlan", "TaskPlan",
                    "config_key", "task_plan")

__all__ = [
    "CACHE",
    "PlanCache",
    "StagePlan",
    "TaskPlan",
    "config_key",
    "disable",
    "disabled_scope",
    "enable",
    "enabled",
    "hot_path",
    "task_plan",
]


def __getattr__(name: str):
    import importlib
    if name == "stageplan" or name == "runtime":
        return importlib.import_module(f"repro.perf.{name}")
    if name in _STAGEPLAN_NAMES:
        module = importlib.import_module("repro.perf.stageplan")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
