"""Simulated Arcade Learning Environment (ALE).

The paper evaluates on six Atari 2600 games via the Arcade Learning
Environment.  Atari ROMs are proprietary and ALE cannot be installed in this
offline environment, so this package provides six from-scratch games with
pixel rendering (210x160 RGB like a real Atari screen), per-game dynamics,
lives, and score-shaped rewards behind both a gym-style interface
(:class:`~repro.ale.games.base.AtariGame` is an :class:`~repro.envs.Env`)
and an ALE-style C++-ish interface (:class:`~repro.ale.interface.SimulatedALE`).

The games exercise exactly the code path the paper's agents run: raw pixels
-> DeepMind preprocessing -> 4x84x84 stack -> Table 1 network -> discrete
action -> clipped reward, and are genuinely learnable by A3C.
"""

from repro.ale.games import GAME_NAMES, make_game
from repro.ale.interface import SimulatedALE

__all__ = ["GAME_NAMES", "SimulatedALE", "make_game"]
