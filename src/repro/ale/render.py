"""Terminal rendering of game screens.

Turns a 210x160 RGB frame into ASCII art (luminance-mapped), so agents
can be watched and game dynamics debugged without any display stack —
handy in the same headless environments this reproduction targets.
"""

from __future__ import annotations

import numpy as np

from repro.envs.preprocessing import bilinear_resize, rgb_to_grayscale

#: Dark-to-bright character ramp.
_RAMP = " .:-=+*#%@"


def screen_to_ascii(frame: np.ndarray, width: int = 64,
                    height: int = 28) -> str:
    """Render an ``(H, W, 3)`` RGB (or 2-D grayscale) frame as text."""
    gray = rgb_to_grayscale(frame) if frame.ndim == 3 \
        else frame.astype(np.float32)
    small = bilinear_resize(gray, height, width)
    lo, hi = float(small.min()), float(small.max())
    span = (hi - lo) or 1.0
    indices = ((small - lo) / span * (len(_RAMP) - 1)).astype(int)
    return "\n".join("".join(_RAMP[i] for i in row) for row in indices)


def side_by_side(left: str, right: str, gap: str = "   ") -> str:
    """Join two ASCII frames horizontally."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    width = max((len(line) for line in left_lines), default=0)
    out = []
    for index in range(height):
        l = left_lines[index] if index < len(left_lines) else ""
        r = right_lines[index] if index < len(right_lines) else ""
        out.append(l.ljust(width) + gap + r)
    return "\n".join(out)
