"""An ALE-style interface over the simulated games.

The paper's host-side agents drive the Arcade Learning Environment through
its C++-ish API (``act``, ``game_over``, ``reset_game``, ``getScreenRGB``,
``lives``, ``getMinimalActionSet``).  :class:`SimulatedALE` exposes that
API over the from-scratch games so agent code written against ALE ports
directly.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.ale.games import make_game
from repro.ale.games.base import ALE_ACTIONS, AtariGame


class SimulatedALE:
    """Drop-in stand-in for ``ale_python_interface.ALEInterface``."""

    def __init__(self, game: typing.Union[str, AtariGame],
                 seed: typing.Optional[int] = None,
                 repeat_action_probability: float = 0.0):
        """``repeat_action_probability`` implements ALE's sticky actions
        (default off, matching the pre-2018 evaluation protocol the paper
        follows)."""
        self._game = make_game(game) if isinstance(game, str) else game
        if seed is not None:
            self._game.seed(seed)
        self.repeat_action_probability = repeat_action_probability
        self._last_screen: typing.Optional[np.ndarray] = None
        self._last_action = 0
        self.reset_game()

    def getMinimalActionSet(self) -> typing.List[int]:
        """ALE action *codes* of the game's minimal action set."""
        return [ALE_ACTIONS.index(m)
                for m in self._game.action_meanings()]

    def getLegalActionSet(self) -> typing.List[int]:
        """All 18 ALE action codes."""
        return list(range(len(ALE_ACTIONS)))

    def act(self, action_code: int) -> float:
        """Apply an ALE action code for one frame; returns the reward."""
        meanings = self._game.action_meanings()
        code_to_index = {ALE_ACTIONS.index(m): i
                         for i, m in enumerate(meanings)}
        index = code_to_index.get(int(action_code), 0)  # unknown -> NOOP
        if self.repeat_action_probability > 0 and \
                self._game.rng.random() < self.repeat_action_probability:
            index = self._last_action
        self._last_action = index
        screen, reward, _, _ = self._game.step(index)
        self._last_screen = screen
        return reward

    def game_over(self) -> bool:
        """True when the episode has ended."""
        return self._game.game_over

    def reset_game(self) -> None:
        """Start a new episode."""
        self._last_screen = self._game.reset()
        self._last_action = 0

    def lives(self) -> int:
        """Remaining lives."""
        return self._game.lives

    def getScreenRGB(self) -> np.ndarray:
        """The current ``(210, 160, 3)`` uint8 screen."""
        if self._last_screen is None:
            raise RuntimeError("no frame available; call reset_game()")
        return self._last_screen

    def getScreenGrayscale(self) -> np.ndarray:
        """Luminance screen, shape ``(210, 160)`` uint8."""
        from repro.envs.preprocessing import rgb_to_grayscale
        return rgb_to_grayscale(self.getScreenRGB()).astype(np.uint8)

    def getEpisodeFrameNumber(self) -> int:
        """Frame counter within the current episode."""
        return self._game.frame

    @property
    def game(self) -> AtariGame:
        """The underlying simulated game object."""
        return self._game
