"""Batched Pong: fully vectorized paddle/ball dynamics.

Serves draw from the serving slot's generator with the scalar game's
exact draw order; everything else is elementwise float64 math over the
batch axis (bit-identical to the scalar ops lane by lane).
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_WIDTH
from repro.ale.games.pong import (
    _AGENT,
    _AGENT_X,
    _BALL,
    _BALL_SIZE,
    _BG,
    _COURT_BOTTOM,
    _COURT_TOP,
    _OPPONENT,
    _OPPONENT_X,
    _PADDLE_H,
    _PADDLE_W,
    _WALL,
    _WIN_SCORE,
    Pong,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecPong(VecAtariGame):
    """Structure-of-arrays Pong."""

    SCALAR_GAME = Pong

    def _alloc(self, batch: int) -> None:
        self.agent_y = np.zeros(batch)
        self.opponent_y = np.zeros(batch)
        self.ball = np.zeros((batch, 2))
        self.ball_vel = np.zeros((batch, 2))
        self.agent_score = np.zeros(batch, dtype=np.int64)
        self.opponent_score = np.zeros(batch, dtype=np.int64)
        self.serve_delay = np.zeros(batch, dtype=np.int64)
        self.serve_direction = np.ones(batch, dtype=np.int64)

    def _reset_slots(self, slots: np.ndarray) -> None:
        mid = (_COURT_TOP + _COURT_BOTTOM) / 2
        self.agent_y[slots] = mid - _PADDLE_H / 2
        self.opponent_y[slots] = mid - _PADDLE_H / 2
        self.agent_score[slots] = 0
        self.opponent_score[slots] = 0
        for k in slots:
            k = int(k)
            self.serve_direction[k] = \
                1 if self.rngs[k].random() < 0.5 else -1
            self._serve_slot(k)

    def _serve_slot(self, k: int) -> None:
        rng = self.rngs[k]
        self.ball[k, 0] = SCREEN_WIDTH / 2
        self.ball[k, 1] = rng.uniform(_COURT_TOP + 20, _COURT_BOTTOM - 20)
        vy = rng.uniform(-1.5, 1.5)
        self.ball_vel[k, 0] = Pong.BALL_SPEED_X * self.serve_direction[k]
        self.ball_vel[k, 1] = vy
        self.serve_delay[k] = 20

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        s = slots
        right = self._act_right[actions]
        left = self._act_left[actions] & ~right
        agent_y = self.agent_y[s]
        agent_y[right] -= Pong.PADDLE_SPEED
        agent_y[left] += Pong.PADDLE_SPEED
        agent_y = np.clip(agent_y, _COURT_TOP, _COURT_BOTTOM - _PADDLE_H)
        ball = self.ball[s]
        vel = self.ball_vel[s]
        # Scripted opponent tracks the ball (dead zone of 4 pixels).
        opp = self.opponent_y[s]
        delta = (ball[:, 1] - _PADDLE_H / 2) - opp
        track = np.abs(delta) > 4
        track_step = np.clip(delta, -Pong.OPPONENT_SPEED,
                             Pong.OPPONENT_SPEED)
        opp[track] += track_step[track]
        opp = np.clip(opp, _COURT_TOP, _COURT_BOTTOM - _PADDLE_H)

        sd = self.serve_delay[s]
        waiting = sd > 0
        sd[waiting] -= 1
        act = ~waiting
        rewards = np.zeros(s.size)

        ball[act] += vel[act]
        by = ball[:, 1]
        m_top = act & (by <= _COURT_TOP)
        ball[m_top, 1] = _COURT_TOP
        vel[m_top, 1] = np.abs(vel[m_top, 1])
        m_bot = act & ~m_top & (by >= _COURT_BOTTOM - _BALL_SIZE)
        ball[m_bot, 1] = _COURT_BOTTOM - _BALL_SIZE
        vel[m_bot, 1] = -np.abs(vel[m_bot, 1])

        asco = self.agent_score[s]
        osco = self.opponent_score[s]
        sdir = self.serve_direction[s]
        # Agent side (right).
        cond_a = act & (vel[:, 0] > 0) & \
            (ball[:, 0] + _BALL_SIZE >= _AGENT_X)
        hit_a = cond_a & (agent_y - _BALL_SIZE <= ball[:, 1]) & \
            (ball[:, 1] <= agent_y + _PADDLE_H)
        if hit_a.any():
            offset = (ball[hit_a, 1] + _BALL_SIZE / 2 - agent_y[hit_a]
                      - _PADDLE_H / 2) / (_PADDLE_H / 2)
            vel[hit_a, 0] = np.clip(-vel[hit_a, 0] * 1.03, -4.0, 4.0)
            vel[hit_a, 1] = np.clip(offset * Pong.BALL_SPEED_Y_MAX,
                                    -Pong.BALL_SPEED_Y_MAX,
                                    Pong.BALL_SPEED_Y_MAX)
            ball[hit_a, 0] = _AGENT_X - _BALL_SIZE
        miss_a = cond_a & ~hit_a & (ball[:, 0] > SCREEN_WIDTH)
        # Opponent side (left) — the scalar game's elif chain.
        cond_o = act & ~cond_a & (vel[:, 0] < 0) & \
            (ball[:, 0] <= _OPPONENT_X + _PADDLE_W)
        hit_o = cond_o & (opp - _BALL_SIZE <= ball[:, 1]) & \
            (ball[:, 1] <= opp + _PADDLE_H)
        if hit_o.any():
            offset = (ball[hit_o, 1] + _BALL_SIZE / 2 - opp[hit_o]
                      - _PADDLE_H / 2) / (_PADDLE_H / 2)
            vel[hit_o, 0] = np.clip(-vel[hit_o, 0] * 1.03, -4.0, 4.0)
            vel[hit_o, 1] = np.clip(offset * Pong.BALL_SPEED_Y_MAX,
                                    -Pong.BALL_SPEED_Y_MAX,
                                    Pong.BALL_SPEED_Y_MAX)
            ball[hit_o, 0] = _OPPONENT_X + _PADDLE_W
        miss_o = cond_o & ~hit_o & (ball[:, 0] < -_BALL_SIZE)

        rewards[miss_a] = -1.0
        osco[miss_a] += 1
        sdir[miss_a] = 1
        rewards[miss_o] = 1.0
        asco[miss_o] += 1
        sdir[miss_o] = -1

        self.agent_y[s] = agent_y
        self.opponent_y[s] = opp
        self.ball[s] = ball
        self.ball_vel[s] = vel
        self.serve_delay[s] = sd
        self.agent_score[s] = asco
        self.opponent_score[s] = osco
        self.serve_direction[s] = sdir
        serve = miss_a | miss_o
        if serve.any():
            for k in s[serve]:
                self._serve_slot(int(k))
        win = act & ((asco >= _WIN_SCORE) | (osco >= _WIN_SCORE))
        if win.any():
            self.lives[s[win]] = 0
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _BG)
        scr.fill_rect_slots(slots, _COURT_TOP - 4, 0, 4, SCREEN_WIDTH,
                            _WALL)
        scr.fill_rect_slots(slots, _COURT_BOTTOM, 0, 4, SCREEN_WIDTH,
                            _WALL)
        for k in slots:
            k = int(k)
            scr.fill_rect(k, 8, 10, 8, 3 * self.opponent_score[k],
                          _OPPONENT)
            scr.fill_rect(k, 8,
                          SCREEN_WIDTH - 10 - 3 * self.agent_score[k],
                          8, 3 * self.agent_score[k], _AGENT)
            scr.fill_rect(k, self.opponent_y[k], _OPPONENT_X, _PADDLE_H,
                          _PADDLE_W, _OPPONENT)
            scr.fill_rect(k, self.agent_y[k], _AGENT_X, _PADDLE_H,
                          _PADDLE_W, _AGENT)
            if self.serve_delay[k] == 0:
                scr.fill_rect(k, self.ball[k, 1], self.ball[k, 0],
                              _BALL_SIZE, _BALL_SIZE, _BALL)
