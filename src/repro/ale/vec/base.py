"""Structure-of-arrays batched Atari games.

Each game's state lives in ``(B, ...)`` arrays and one :meth:`step`
advances all ``B`` environments together: elementwise dynamics run as
vectorized NumPy over the batch axis, and every slot renders into one
preallocated ``(B, 210, 160, 3)`` frame buffer instead of allocating a
fresh frame per env per step.

Bit-exactness contract
----------------------

Slot ``i`` of a batched game is bit-identical to a scalar
:class:`repro.ale.games.base.AtariGame` stepped with the same seed and
action sequence:

* every slot owns an independent ``np.random.Generator``, seeded exactly
  like the scalar env, and draws are made only for the slots (and in the
  per-slot order) the scalar game would make them;
* elementwise float64 arithmetic (``+ - * /``, ``np.clip``, ``abs``) is
  IEEE-identical whether applied to a Python/NumPy scalar or an array
  lane, so bulk dynamics vectorize without changing a single bit;
* operations whose reduction order could differ from the scalar code
  (e.g. ``np.linalg.norm``) and rare discrete events (serves, launches,
  enemy hops) run per affected slot with the scalar game's exact
  expression sequence;
* rendering issues the same ``fill_rect`` sequence per slot, with
  batch-constant rectangles stamped across slots in one masked write.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.ale.games.base import (
    ALE_ACTIONS,
    SCREEN_HEIGHT,
    SCREEN_WIDTH,
    AtariGame,
)
from repro.envs.spaces import Box, Discrete
from repro.perf.hotpath import hot_path


class BatchScreen:
    """A shared ``(B, H, W, 3)`` frame buffer with per-slot drawing.

    The per-slot :meth:`fill_rect` reproduces
    :meth:`repro.ale.games.base.Screen.fill_rect`'s rounding and clipping
    exactly; :meth:`fill_rect_slots` stamps one batch-constant rectangle
    into many slots with a single masked write.
    """

    def __init__(self, batch: int, height: int = SCREEN_HEIGHT,
                 width: int = SCREEN_WIDTH):
        self.batch = batch
        self.height = height
        self.width = width
        self.pixels = np.zeros((batch, height, width, 3), dtype=np.uint8)
        # Full-frame fills per colour: copying a prebuilt (H, W, 3)
        # frame is ~40x faster than broadcasting an RGB tuple into the
        # batch buffer (contiguous block copy vs strided pattern fill).
        self._clear_frames: typing.Dict[typing.Tuple[int, int, int],
                                        np.ndarray] = {}

    def _clipped(self, top: float, left: float, height: float,
                 width: float) -> typing.Tuple[int, int, int, int]:
        t = min(max(int(round(top)), 0), self.height)
        l = min(max(int(round(left)), 0), self.width)
        b = min(max(int(round(top + height)), 0), self.height)
        r = min(max(int(round(left + width)), 0), self.width)
        return t, l, b, r

    def clear_slots(self, slots: np.ndarray,
                    color: typing.Tuple[int, int, int]) -> None:
        """Fill the whole frame of every listed slot with one colour."""
        frame = self._clear_frames.get(color)
        if frame is None:
            frame = np.empty((self.height, self.width, 3), dtype=np.uint8)
            frame[:] = color
            self._clear_frames[color] = frame
        if slots.size == self.batch:
            self.pixels[:] = frame
        else:
            self.pixels[slots] = frame

    def fill_rect(self, slot: int, top: float, left: float, height: float,
                  width: float, color: typing.Tuple[int, int, int]) -> None:
        """Fill a rectangle in one slot, clipped to the frame."""
        t, l, b, r = self._clipped(top, left, height, width)
        if b > t and r > l:
            self.pixels[slot, t:b, l:r] = color

    def fill_rect_slots(self, slots: np.ndarray, top: float, left: float,
                        height: float, width: float,
                        color: typing.Tuple[int, int, int]) -> None:
        """Fill the same rectangle in every listed slot at once."""
        t, l, b, r = self._clipped(top, left, height, width)
        if b > t and r > l:
            if slots.size == self.batch:
                self.pixels[:, t:b, l:r] = color
            else:
                self.pixels[slots, t:b, l:r] = color


class VecAtariGame:
    """Base class for the batched games.

    Subclasses point :attr:`SCALAR_GAME` at their scalar counterpart
    (action set, lives and frame limit are inherited from it) and
    implement :meth:`_alloc`, :meth:`_reset_slots`, :meth:`_step_slots`
    and :meth:`_render_slots`, all operating on ``(B,)``-leading arrays.

    Unlike :class:`~repro.envs.base.Env`, stepping takes an optional
    ``slots`` index array so callers (the batched frame-skip loop) can
    advance a sub-batch while other slots sit on a finished frame.
    """

    #: The scalar game this engine reproduces bit-for-bit per slot.
    SCALAR_GAME: typing.Type[AtariGame] = AtariGame

    def __init__(self, batch: int):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        scalar = self.SCALAR_GAME
        self.batch = batch
        self.action_meanings = scalar.ACTION_MEANINGS
        self.start_lives = scalar.START_LIVES
        self.max_frames = scalar.MAX_FRAMES
        self.action_space = Discrete(len(self.action_meanings))
        self.observation_space = Box(0, 255,
                                     (SCREEN_HEIGHT, SCREEN_WIDTH, 3),
                                     dtype=np.uint8)
        self.screen = BatchScreen(batch)
        self.lives = np.zeros(batch, dtype=np.int64)
        self.score = np.zeros(batch)
        self.frame = np.zeros(batch, dtype=np.int64)
        self.game_over = np.ones(batch, dtype=bool)
        self.rngs = [np.random.default_rng() for _ in range(batch)]
        # Per-action lookup tables for vectorized decode_move.
        meanings = self.action_meanings
        for meaning in meanings:
            if meaning not in ALE_ACTIONS:
                raise ValueError(f"unknown action meaning {meaning!r}")
        decoded = [AtariGame.decode_move(m) for m in meanings]
        self._act_dx = np.array([d[0] for d in decoded], dtype=np.int64)
        self._act_dy = np.array([d[1] for d in decoded], dtype=np.int64)
        self._act_fire = np.array([d[2] for d in decoded], dtype=bool)
        self._act_right = np.array(["RIGHT" in m for m in meanings],
                                   dtype=bool)
        self._act_left = np.array(["LEFT" in m for m in meanings],
                                  dtype=bool)
        self._all_slots = np.arange(batch, dtype=np.intp)
        self._alloc(batch)

    # -- subclass hooks ---------------------------------------------------

    def _alloc(self, batch: int) -> None:
        """Allocate the game's ``(B, ...)`` state arrays."""
        raise NotImplementedError

    def _reset_slots(self, slots: np.ndarray) -> None:
        """Initialise game state for a new episode in the listed slots."""
        raise NotImplementedError

    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        """Advance the listed slots one frame; return per-slot rewards."""
        raise NotImplementedError

    def _render_slots(self, slots: np.ndarray) -> None:
        """Draw the listed slots into :attr:`screen`."""
        raise NotImplementedError

    # -- batched protocol --------------------------------------------------

    def seed(self, seeds: typing.Sequence[int]) -> None:
        """Seed every slot's generator (one seed per slot)."""
        if len(seeds) != self.batch:
            raise ValueError(f"expected {self.batch} seeds, "
                             f"got {len(seeds)}")
        self.rngs = [np.random.default_rng(s) for s in seeds]

    def reset(self) -> np.ndarray:
        """Reset every slot; returns a view of the shared frame buffer."""
        self.reset_slots(self._all_slots)
        return self.screen.pixels

    def reset_slots(self, slots: np.ndarray) -> None:
        """Start a new episode in the listed slots only."""
        slots = np.asarray(slots, dtype=np.intp)
        self.lives[slots] = self.start_lives
        self.score[slots] = 0.0
        self.frame[slots] = 0
        self.game_over[slots] = False
        self._reset_slots(slots)
        self._render_slots(slots)

    @hot_path
    def step(self, actions: typing.Sequence[int],
             slots: typing.Optional[np.ndarray] = None
             ) -> typing.Tuple[np.ndarray, np.ndarray]:
        """Advance the listed slots (default: all) one frame each.

        Returns ``(rewards, dones)`` aligned with ``slots``.  Finished
        slots must be :meth:`reset_slots` before they are stepped again,
        mirroring the scalar env's step-after-game-over error.
        """
        if slots is None:
            slots = self._all_slots
        else:
            slots = np.asarray(slots, dtype=np.intp)
        if self.game_over[slots].any():
            raise RuntimeError("step() called on a finished slot; "
                               "call reset_slots()")
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (slots.size,):
            raise ValueError(f"expected {slots.size} actions, "
                             f"got shape {actions.shape}")
        if ((actions < 0) | (actions >= len(self.action_meanings))).any():
            raise ValueError(f"invalid action for "
                             f"{type(self).__name__}")
        rewards = self._step_slots(slots, actions)
        self.frame[slots] += 1
        self.score[slots] += rewards
        dones = (self.lives[slots] <= 0) | \
            (self.frame[slots] >= self.max_frames)
        self.game_over[slots] = dones
        self._render_slots(slots)
        return rewards, dones

    @property
    def frames(self) -> np.ndarray:
        """The shared ``(B, 210, 160, 3)`` uint8 frame buffer (a view)."""
        return self.screen.pixels
