"""Batched Breakout: vectorized ball/brick dynamics, masked brick render.

Brick hits resolve with fancy indexing over the ``(B, 6, 18)`` brick
array; launches (an RNG draw) and paddle bounces (``np.linalg.norm``,
whose reduction order must match the scalar game exactly) run per
affected slot.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH
from repro.ale.games.breakout import (
    _BALL,
    _BALL_SIZE,
    _BG,
    _BRICK_H,
    _BRICK_TOP,
    _BRICK_W,
    _COURT_TOP,
    _N_COLS,
    _N_ROWS,
    _PADDLE,
    _PADDLE_H,
    _PADDLE_W,
    _PADDLE_Y,
    _ROW_COLORS,
    _ROW_SCORES,
    _WALL,
    _WALL_W,
    Breakout,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecBreakout(VecAtariGame):
    """Structure-of-arrays Breakout."""

    SCALAR_GAME = Breakout

    def _alloc(self, batch: int) -> None:
        self.paddle_x = np.zeros(batch)
        self.ball = np.zeros((batch, 2))
        self.ball_vel = np.zeros((batch, 2))
        self.bricks = np.ones((batch, _N_ROWS, _N_COLS), dtype=bool)
        self.ball_in_play = np.zeros(batch, dtype=bool)
        self.clears = np.zeros(batch, dtype=np.int64)
        self._row_scores = np.array(_ROW_SCORES, dtype=np.float64)

    def _reset_slots(self, slots: np.ndarray) -> None:
        self.paddle_x[slots] = SCREEN_WIDTH / 2 - _PADDLE_W / 2
        self.bricks[slots] = True
        self.ball_in_play[slots] = False
        self.clears[slots] = 0

    def _launch_slot(self, k: int) -> None:
        self.ball[k, 0] = self.paddle_x[k] + _PADDLE_W / 2
        self.ball[k, 1] = _PADDLE_Y - _BALL_SIZE - 1
        angle = self.rngs[k].uniform(np.pi * 0.25, np.pi * 0.75)
        self.ball_vel[k, 0] = np.cos(angle) * Breakout.BALL_SPEED
        self.ball_vel[k, 1] = -np.sin(angle) * Breakout.BALL_SPEED
        self.ball_in_play[k] = True

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        s = slots
        right = self._act_right[actions]
        left = self._act_left[actions] & ~right
        px = self.paddle_x[s]
        px[right] += Breakout.PADDLE_SPEED
        px[left] -= Breakout.PADDLE_SPEED
        px = np.clip(px, _WALL_W, SCREEN_WIDTH - _WALL_W - _PADDLE_W)
        self.paddle_x[s] = px

        rewards = np.zeros(s.size)
        act = self.ball_in_play[s]
        launch = ~act & self._act_fire[actions]
        if launch.any():
            for k in s[launch]:
                self._launch_slot(int(k))
        if not act.any():
            return rewards

        ball = self.ball[s]
        vel = self.ball_vel[s]
        ball[act] += vel[act]
        bx = ball[:, 0]
        by = ball[:, 1]

        # Side walls and ceiling.
        m_l = act & (bx <= _WALL_W)
        ball[m_l, 0] = _WALL_W
        vel[m_l, 0] = np.abs(vel[m_l, 0])
        m_r = act & ~m_l & (bx >= SCREEN_WIDTH - _WALL_W - _BALL_SIZE)
        ball[m_r, 0] = SCREEN_WIDTH - _WALL_W - _BALL_SIZE
        vel[m_r, 0] = -np.abs(vel[m_r, 0])
        m_t = act & (by <= _COURT_TOP)
        ball[m_t, 1] = _COURT_TOP
        vel[m_t, 1] = np.abs(vel[m_t, 1])

        # Bricks.
        in_band = act & (by >= _BRICK_TOP) & \
            (by < _BRICK_TOP + _N_ROWS * _BRICK_H)
        if in_band.any():
            bricks = self.bricks[s]
            row = ((by - _BRICK_TOP) // _BRICK_H).astype(np.int64)
            col = ((bx - _WALL_W) // _BRICK_W).astype(np.int64)
            valid = in_band & (row >= 0) & (row < _N_ROWS) & \
                (col >= 0) & (col < _N_COLS)
            rr = np.clip(row, 0, _N_ROWS - 1)
            cc = np.clip(col, 0, _N_COLS - 1)
            hit = valid & bricks[np.arange(s.size), rr, cc]
            if hit.any():
                idx = np.nonzero(hit)[0]
                bricks[idx, row[idx], col[idx]] = False
                vel[hit, 1] = -vel[hit, 1]
                rewards[hit] += self._row_scores[row[hit]]
            cleared = in_band & ~bricks.any(axis=(1, 2))
            if cleared.any():
                # Cleared the wall: new wall, slightly faster ball.
                bricks[cleared] = True
                clears = self.clears[s]
                clears[cleared] += 1
                self.clears[s] = clears
                vel[cleared] *= 1.1
            self.bricks[s] = bricks

        # Paddle bounce (rare; scalar expression order preserved).
        pad = act & (vel[:, 1] > 0) & \
            (_PADDLE_Y - _BALL_SIZE <= by) & (by <= _PADDLE_Y + _PADDLE_H) & \
            (px - _BALL_SIZE <= bx) & (bx <= px + _PADDLE_W)
        if pad.any():
            for k in np.nonzero(pad)[0]:
                offset = (ball[k, 0] + _BALL_SIZE / 2 - px[k]
                          - _PADDLE_W / 2) / (_PADDLE_W / 2)
                speed = float(np.linalg.norm(vel[k]))
                angle = np.pi / 2 - offset * np.pi / 3
                vel[k, 0] = np.cos(angle) * speed
                vel[k, 1] = -np.sin(angle) * speed
                ball[k, 1] = _PADDLE_Y - _BALL_SIZE

        # Missed: lose a life, ball must be re-served.
        miss = act & (by > SCREEN_HEIGHT)
        self.ball[s] = ball
        self.ball_vel[s] = vel
        if miss.any():
            self.lives[s[miss]] -= 1
            self.ball_in_play[s[miss]] = False
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _BG)
        scr.fill_rect_slots(slots, _COURT_TOP - 6, 0, 6, SCREEN_WIDTH,
                            _WALL)
        scr.fill_rect_slots(slots, _COURT_TOP, 0, SCREEN_HEIGHT, _WALL_W,
                            _WALL)
        scr.fill_rect_slots(slots, _COURT_TOP, SCREEN_WIDTH - _WALL_W,
                            SCREEN_HEIGHT, _WALL_W, _WALL)
        for k in slots:
            k = int(k)
            for i in range(self.lives[k]):
                scr.fill_rect(k, 10, 10 + 8 * i, 5, 5, _PADDLE)
        bricks = self.bricks[slots]
        for row in range(_N_ROWS):
            color = _ROW_COLORS[row]
            top = _BRICK_TOP + row * _BRICK_H
            for col in range(_N_COLS):
                on = bricks[:, row, col]
                if on.all():
                    scr.fill_rect_slots(slots, top,
                                        _WALL_W + col * _BRICK_W,
                                        _BRICK_H - 1, _BRICK_W - 1, color)
                elif on.any():
                    scr.fill_rect_slots(slots[on], top,
                                        _WALL_W + col * _BRICK_W,
                                        _BRICK_H - 1, _BRICK_W - 1, color)
        for k in slots:
            k = int(k)
            scr.fill_rect(k, _PADDLE_Y, self.paddle_x[k], _PADDLE_H,
                          _PADDLE_W, _PADDLE)
            if self.ball_in_play[k]:
                scr.fill_rect(k, self.ball[k, 1], self.ball[k, 0],
                              _BALL_SIZE, _BALL_SIZE, _BALL)
