"""Batched Seaquest: SoA sub/oxygen state, per-slot entity dynamics.

Seaquest draws from its RNG every frame (spawn rolls) and keeps ragged
shark/diver lists, so its frame dynamics run per slot with the scalar
game's exact expression sequence; the scalar fields live in ``(B,)``
arrays and all slots share the batched frame buffer.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH
from repro.ale.games.seaquest import (
    _DIVER,
    _DIVER_H,
    _DIVER_W,
    _FLOOR_Y,
    _OXYGEN_BAR,
    _OXYGEN_LOW,
    _SHARK,
    _SHARK_H,
    _SHARK_W,
    _SKY,
    _SUB,
    _SUB_H,
    _SUB_W,
    _SURFACE_Y,
    _TORPEDO,
    _TORPEDO_SPEED,
    _WATER,
    Seaquest,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecSeaquest(VecAtariGame):
    """Structure-of-arrays Seaquest."""

    SCALAR_GAME = Seaquest

    def _alloc(self, batch: int) -> None:
        self.sub = np.zeros((batch, 2))
        self.oxygen = np.zeros(batch)
        self.sharks = [[] for _ in range(batch)]
        self.divers = [[] for _ in range(batch)]
        self.torpedo = [None] * batch
        self.divers_held = np.zeros(batch, dtype=np.int64)
        self.respawn = np.zeros(batch, dtype=np.int64)

    def _reset_slots(self, slots: np.ndarray) -> None:
        for k in slots:
            k = int(k)
            self.sub[k] = (SCREEN_WIDTH / 2, _SURFACE_Y + 30)
            self.oxygen[k] = Seaquest.OXYGEN_MAX
            self.sharks[k] = []
            self.divers[k] = []
            self.torpedo[k] = None
            self.divers_held[k] = 0
            self.respawn[k] = 0

    @hot_path
    def _spawn_slot(self, k: int) -> None:
        rng = self.rngs[k]
        if rng.random() < Seaquest.SPAWN_PROBABILITY:
            direction = 1 if rng.random() < 0.5 else -1
            x = -_SHARK_W if direction > 0 else SCREEN_WIDTH
            y = rng.uniform(_SURFACE_Y + 20, _FLOOR_Y - 10)
            self.sharks[k].append(np.array([x, y, direction]))
        if rng.random() < Seaquest.DIVER_PROBABILITY:
            direction = 1 if rng.random() < 0.5 else -1
            x = -_DIVER_W if direction > 0 else SCREEN_WIDTH
            y = rng.uniform(_SURFACE_Y + 30, _FLOOR_Y - 10)
            self.divers[k].append(np.array([x, y, direction]))

    def _lose_life_slot(self, k: int) -> None:
        self.lives[k] -= 1
        self.respawn[k] = 30
        self.sub[k] = (SCREEN_WIDTH / 2, _SURFACE_Y + 30)
        self.oxygen[k] = Seaquest.OXYGEN_MAX
        self.torpedo[k] = None
        self.divers_held[k] = 0

    @hot_path
    def _step_slot(self, k: int, action: int) -> float:
        if self.respawn[k] > 0:
            self.respawn[k] -= 1
            return 0.0

        dx = int(self._act_dx[action])
        dy = int(self._act_dy[action])
        fire = bool(self._act_fire[action])
        self.sub[k, 0] = np.clip(self.sub[k, 0] + dx * Seaquest.SUB_SPEED,
                                 0, SCREEN_WIDTH - _SUB_W)
        self.sub[k, 1] = np.clip(self.sub[k, 1] + dy * Seaquest.SUB_SPEED,
                                 _SURFACE_Y, _FLOOR_Y - _SUB_H)
        if fire and self.torpedo[k] is None:
            facing = 1.0 if dx >= 0 else -1.0
            self.torpedo[k] = np.array([self.sub[k, 0] + _SUB_W / 2,
                                        self.sub[k, 1] + _SUB_H / 2,
                                        facing])

        reward = 0.0
        at_surface = self.sub[k, 1] <= _SURFACE_Y + 1

        # Oxygen economy.
        if at_surface:
            refill = self.oxygen[k] < Seaquest.OXYGEN_MAX
            self.oxygen[k] = min(Seaquest.OXYGEN_MAX,
                                 self.oxygen[k] + 8.0)
            if refill and self.oxygen[k] >= Seaquest.OXYGEN_MAX \
                    and self.divers_held[k] > 0:
                reward += Seaquest.DIVER_BONUS * self.divers_held[k]
                self.divers_held[k] = 0
        else:
            self.oxygen[k] -= 1.0
            if self.oxygen[k] <= 0:
                self._lose_life_slot(k)
                return reward

        self._spawn_slot(k)

        # Sharks drift horizontally; collide with the sub.
        remaining = []
        for shark in self.sharks[k]:
            shark[0] += shark[2] * Seaquest.SHARK_SPEED
            if -_SHARK_W <= shark[0] <= SCREEN_WIDTH:
                remaining.append(shark)
        self.sharks[k] = remaining
        for shark in self.sharks[k]:
            if (abs(shark[0] - self.sub[k, 0]) < (_SHARK_W + _SUB_W) / 2
                    and abs(shark[1] - self.sub[k, 1]) <
                    (_SHARK_H + _SUB_H) / 2):
                self._lose_life_slot(k)
                return reward

        # Divers drift; pick them up by touching.
        remaining = []
        for diver in self.divers[k]:
            diver[0] += diver[2] * Seaquest.DIVER_SPEED
            touched = (abs(diver[0] - self.sub[k, 0]) <
                       (_DIVER_W + _SUB_W) / 2 and
                       abs(diver[1] - self.sub[k, 1]) <
                       (_DIVER_H + _SUB_H) / 2)
            if touched and self.divers_held[k] < Seaquest.MAX_DIVERS_HELD:
                self.divers_held[k] += 1
            elif -_DIVER_W <= diver[0] <= SCREEN_WIDTH:
                remaining.append(diver)
        self.divers[k] = remaining

        # Torpedo flight and shark hits.
        torpedo = self.torpedo[k]
        if torpedo is not None:
            torpedo[0] += torpedo[2] * _TORPEDO_SPEED
            if not 0 <= torpedo[0] <= SCREEN_WIDTH:
                self.torpedo[k] = None
            else:
                for index, shark in enumerate(self.sharks[k]):
                    if (abs(shark[0] - torpedo[0]) < _SHARK_W and
                            abs(shark[1] - torpedo[1]) < _SHARK_H):
                        del self.sharks[k][index]
                        self.torpedo[k] = None
                        reward += Seaquest.SHARK_SCORE
                        break
        return reward

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        rewards = np.zeros(slots.size)
        for kc in range(slots.size):
            rewards[kc] = self._step_slot(int(slots[kc]),
                                          int(actions[kc]))
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _WATER)
        scr.fill_rect_slots(slots, 0, 0, _SURFACE_Y, SCREEN_WIDTH, _SKY)
        for k in slots:
            k = int(k)
            # Oxygen gauge along the bottom.
            frac = max(self.oxygen[k], 0.0) / Seaquest.OXYGEN_MAX
            color = _OXYGEN_BAR if frac > 0.25 else _OXYGEN_LOW
            scr.fill_rect(k, SCREEN_HEIGHT - 10, 20, 6,
                          (SCREEN_WIDTH - 40) * frac, color)
            for i in range(self.lives[k]):
                scr.fill_rect(k, 8, 8 + 10 * i, 6, 6, _SUB)
            for i in range(self.divers_held[k]):
                scr.fill_rect(k, 8, SCREEN_WIDTH - 16 - 10 * i, 6, 6,
                              _DIVER)
            for shark in self.sharks[k]:
                scr.fill_rect(k, shark[1], shark[0], _SHARK_H, _SHARK_W,
                              _SHARK)
            for diver in self.divers[k]:
                scr.fill_rect(k, diver[1], diver[0], _DIVER_H, _DIVER_W,
                              _DIVER)
            torpedo = self.torpedo[k]
            if torpedo is not None:
                scr.fill_rect(k, torpedo[1], torpedo[0], 2, 6, _TORPEDO)
            if self.respawn[k] == 0:
                scr.fill_rect(k, self.sub[k, 1], self.sub[k, 0], _SUB_H,
                              _SUB_W, _SUB)
