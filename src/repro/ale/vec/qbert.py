"""Batched Q*bert: vectorized timers/hops, per-slot enemy RNG events.

Hop bookkeeping, the pyramid-completion test and the collision check are
integer masks over the batch; hop resolution and enemy hops (the only
RNG consumers) run per affected slot every ``HOP_FRAMES`` /
``ENEMY_HOP_FRAMES`` frames.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.qbert import (
    _BG,
    _CUBE_H,
    _CUBE_OFF,
    _CUBE_ON,
    _CUBE_W,
    _ENEMY,
    _HOPS,
    _N_ROWS,
    _PLAYER,
    _cube_center,
    Qbert,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecQbert(VecAtariGame):
    """Structure-of-arrays Q*bert."""

    SCALAR_GAME = Qbert

    def _alloc(self, batch: int) -> None:
        self.colored = np.zeros((batch, _N_ROWS, _N_ROWS), dtype=bool)
        self.player_row = np.zeros(batch, dtype=np.int64)
        self.player_col = np.zeros(batch, dtype=np.int64)
        self.enemy_present = np.zeros(batch, dtype=bool)
        self.enemy_row = np.zeros(batch, dtype=np.int64)
        self.enemy_col = np.zeros(batch, dtype=np.int64)
        self.hop_timer = np.zeros(batch, dtype=np.int64)
        self.pending_present = np.zeros(batch, dtype=bool)
        self.pending_row = np.zeros(batch, dtype=np.int64)
        self.pending_col = np.zeros(batch, dtype=np.int64)
        self.enemy_timer = np.zeros(batch, dtype=np.int64)
        self.round_ = np.zeros(batch, dtype=np.int64)
        self.respawn = np.zeros(batch, dtype=np.int64)
        meanings = self.action_meanings
        self._hop_is = np.array([m in _HOPS for m in meanings], dtype=bool)
        self._hop_drow = np.array([_HOPS.get(m, (0, 0))[0]
                                   for m in meanings], dtype=np.int64)
        self._hop_dcol = np.array([_HOPS.get(m, (0, 0))[1]
                                   for m in meanings], dtype=np.int64)
        # Pyramid cells: cube (row, col) exists when col <= row.
        rows = np.arange(_N_ROWS)
        self._pyramid = rows[None, :] <= rows[:, None]

    def _start_round_slot(self, k: int) -> None:
        self.colored[k] = False
        self.player_row[k] = 0
        self.player_col[k] = 0
        self.enemy_present[k] = False
        self.hop_timer[k] = 0
        self.pending_present[k] = False
        self.enemy_timer[k] = Qbert.ENEMY_SPAWN_DELAY
        self.respawn[k] = 0
        self.colored[k, 0, 0] = True

    def _reset_slots(self, slots: np.ndarray) -> None:
        self.round_[slots] = 0
        for k in slots:
            self._start_round_slot(int(k))

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        s = slots
        rewards = np.zeros(s.size)
        resp = self.respawn[s]
        waiting = resp > 0
        resp[waiting] -= 1
        self.respawn[s] = resp
        act = ~waiting
        if not act.any():
            return rewards

        # Player hops.
        ht = self.hop_timer[s]
        timing = act & (ht > 0)
        ht[timing] -= 1
        resolve = timing & (ht == 0) & self.pending_present[s]
        new_hop = act & ~timing & self._hop_is[actions]
        if new_hop.any():
            tgt = s[new_hop]
            self.pending_row[tgt] = self.player_row[tgt] + \
                self._hop_drow[actions[new_hop]]
            self.pending_col[tgt] = self.player_col[tgt] + \
                self._hop_dcol[actions[new_hop]]
            self.pending_present[tgt] = True
            ht[new_hop] = Qbert.HOP_FRAMES
        self.hop_timer[s] = ht
        for kc in np.nonzero(resolve)[0]:
            k = int(s[kc])
            row = int(self.pending_row[k])
            col = int(self.pending_col[k])
            self.pending_present[k] = False
            if 0 <= row < _N_ROWS and 0 <= col <= row:
                self.player_row[k] = row
                self.player_col[k] = col
                if not self.colored[k, row, col]:
                    self.colored[k, row, col] = True
                    rewards[kc] += Qbert.CUBE_SCORE
            else:
                # Hopped off the pyramid.
                self.lives[k] -= 1
                self.respawn[k] = 30
                self.player_row[k] = 0
                self.player_col[k] = 0

        # Enemy ball: spawn countdown and downhill hops.
        had_enemy = self.enemy_present[s]
        et = self.enemy_timer[s]
        no_enemy = act & ~had_enemy
        et[no_enemy] -= 1
        spawn = no_enemy & (et <= 0)
        tick = act & had_enemy
        et[tick] -= 1
        hop_now = tick & (et <= 0)
        self.enemy_timer[s] = et
        if spawn.any():
            tgt = s[spawn]
            self.enemy_row[tgt] = 0
            self.enemy_col[tgt] = 0
            self.enemy_present[tgt] = True
            self.enemy_timer[tgt] = Qbert.ENEMY_HOP_FRAMES
        for kc in np.nonzero(hop_now)[0]:
            k = int(s[kc])
            self.enemy_timer[k] = max(
                Qbert.ENEMY_HOP_FRAMES - int(self.round_[k]), 6)
            row = int(self.enemy_row[k])
            col = int(self.enemy_col[k])
            # The ball bounces downhill, drifting toward the player.
            if row + 1 < _N_ROWS:
                prefer_right = self.player_col[k] > col
                dcol = 1 if prefer_right else 0
                if self.rngs[k].random() < 0.25:
                    dcol = 1 - dcol
                self.enemy_row[k] = row + 1
                self.enemy_col[k] = col + dcol
            else:
                # Fell off the bottom; respawn at the top after a delay.
                self.enemy_present[k] = False
                self.enemy_timer[k] = Qbert.ENEMY_SPAWN_DELAY

        # Collision with the player.
        coll = act & self.enemy_present[s] & \
            (self.enemy_row[s] == self.player_row[s]) & \
            (self.enemy_col[s] == self.player_col[s]) & \
            (self.respawn[s] == 0)
        if coll.any():
            tgt = s[coll]
            self.lives[tgt] -= 1
            self.respawn[tgt] = 30
            self.enemy_present[tgt] = False
            self.enemy_timer[tgt] = Qbert.ENEMY_SPAWN_DELAY
            self.player_row[tgt] = 0
            self.player_col[tgt] = 0

        # Pyramid complete: bonus, next (faster) round.
        done = act & (self.colored[s] | ~self._pyramid).all(axis=(1, 2))
        for kc in np.nonzero(done)[0]:
            k = int(s[kc])
            rewards[kc] += Qbert.ROUND_BONUS
            self.round_[k] += 1
            self._start_round_slot(k)
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _BG)
        for k in slots:
            k = int(k)
            for i in range(self.lives[k]):
                scr.fill_rect(k, 8, 8 + 10 * i, 6, 6, _PLAYER)
        colored = self.colored[slots]
        for row in range(_N_ROWS):
            for col in range(row + 1):
                x, y = _cube_center(row, col)
                on = colored[:, row, col]
                if on.any():
                    scr.fill_rect_slots(slots[on], y, x - _CUBE_W / 2 + 1,
                                        _CUBE_H - 2, _CUBE_W - 2, _CUBE_ON)
                off = ~on
                if off.any():
                    scr.fill_rect_slots(slots[off], y, x - _CUBE_W / 2 + 1,
                                        _CUBE_H - 2, _CUBE_W - 2, _CUBE_OFF)
        for k in slots:
            k = int(k)
            if self.respawn[k] == 0:
                px, py = _cube_center(int(self.player_row[k]),
                                      int(self.player_col[k]))
                lift = 4.0 if self.hop_timer[k] > 0 else 0.0
                scr.fill_rect(k, py - 8 - lift, px - 4, 8, 8, _PLAYER)
            if self.enemy_present[k]:
                ex, ey = _cube_center(int(self.enemy_row[k]),
                                      int(self.enemy_col[k]))
                scr.fill_rect(k, ey - 7, ex - 3, 7, 7, _ENEMY)
