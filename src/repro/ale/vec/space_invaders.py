"""Batched Space Invaders: SoA grid/cannon state, per-slot dynamics.

The bomb-drop roll consumes RNG every frame and the shot/bomb sets are
ragged, so frame dynamics run per slot with the scalar game's exact
expression sequence over ``(B,)``-array fields and per-slot entity
lists; rendering shares the batched frame buffer.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH
from repro.ale.games.space_invaders import (
    _ALIEN,
    _ALIEN_GAP_X,
    _ALIEN_GAP_Y,
    _ALIEN_H,
    _ALIEN_W,
    _BG,
    _BOMB,
    _BOMB_SPEED,
    _GROUND,
    _N_COLS,
    _N_ROWS,
    _PLAYER,
    _PLAYER_H,
    _PLAYER_W,
    _PLAYER_Y,
    _ROW_SCORES,
    _SHOT,
    _SHOT_SPEED,
    SpaceInvaders,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecSpaceInvaders(VecAtariGame):
    """Structure-of-arrays Space Invaders."""

    SCALAR_GAME = SpaceInvaders

    def _alloc(self, batch: int) -> None:
        self.player_x = np.zeros(batch)
        self.alive = np.ones((batch, _N_ROWS, _N_COLS), dtype=bool)
        self.grid_origin = np.zeros((batch, 2))
        self.march_direction = np.ones(batch, dtype=np.int64)
        self.shot = [None] * batch
        self.bombs = [[] for _ in range(batch)]
        self.march_timer = np.zeros(batch, dtype=np.int64)
        self.wave = np.zeros(batch, dtype=np.int64)
        self.respawn = np.zeros(batch, dtype=np.int64)

    def _reset_slots(self, slots: np.ndarray) -> None:
        for k in slots:
            k = int(k)
            self.player_x[k] = SCREEN_WIDTH / 2 - _PLAYER_W / 2
            self.wave[k] = 0
            self.respawn[k] = 0
            self._new_wave_slot(k)

    def _new_wave_slot(self, k: int) -> None:
        self.alive[k] = True
        self.grid_origin[k] = (24.0, 40.0 + 4.0 * self.wave[k])
        self.march_direction[k] = 1
        self.shot[k] = None
        self.bombs[k] = []
        self.march_timer[k] = SpaceInvaders.MARCH_PERIOD

    def _alien_rect(self, k: int, row: int, col: int):
        x = self.grid_origin[k, 0] + col * _ALIEN_GAP_X
        y = self.grid_origin[k, 1] + row * _ALIEN_GAP_Y
        return x, y

    def _march_slot(self, k: int) -> None:
        self.march_timer[k] -= 1
        if self.march_timer[k] > 0:
            return
        self.march_timer[k] = SpaceInvaders.MARCH_PERIOD
        cols_alive = np.where(self.alive[k].any(axis=0))[0]
        left = self.grid_origin[k, 0] + cols_alive[0] * _ALIEN_GAP_X
        right = self.grid_origin[k, 0] + cols_alive[-1] * _ALIEN_GAP_X \
            + _ALIEN_W
        direction = int(self.march_direction[k])
        nxt_left = left + direction * SpaceInvaders.MARCH_STEP
        nxt_right = right + direction * SpaceInvaders.MARCH_STEP
        if nxt_left < 8 or nxt_right > SCREEN_WIDTH - 8:
            self.march_direction[k] = -direction
            self.grid_origin[k, 1] += SpaceInvaders.DESCEND_STEP
        else:
            self.grid_origin[k, 0] += direction * SpaceInvaders.MARCH_STEP

    @hot_path
    def _drop_bombs_slot(self, k: int) -> None:
        rng = self.rngs[k]
        if rng.random() >= \
                SpaceInvaders.BOMB_PROBABILITY * \
                self.alive[k].sum(axis=None):
            return
        cols = np.where(self.alive[k].any(axis=0))[0]
        col = int(rng.choice(cols))
        row = int(np.where(self.alive[k][:, col])[0][-1])
        x, y = self._alien_rect(k, row, col)
        self.bombs[k].append(np.array([x + _ALIEN_W / 2, y + _ALIEN_H]))

    def _step_shot_slot(self, k: int) -> float:
        shot = self.shot[k]
        if shot is None:
            return 0.0
        shot[1] -= _SHOT_SPEED
        if shot[1] < 20:
            self.shot[k] = None
            return 0.0
        # Hit test against aliens.
        for row in range(_N_ROWS):
            for col in range(_N_COLS):
                if not self.alive[k, row, col]:
                    continue
                x, y = self._alien_rect(k, row, col)
                if x <= shot[0] <= x + _ALIEN_W and \
                        y <= shot[1] <= y + _ALIEN_H:
                    self.alive[k, row, col] = False
                    self.shot[k] = None
                    return float(_ROW_SCORES[row])
        return 0.0

    def _step_bombs_slot(self, k: int) -> None:
        remaining = []
        for bomb in self.bombs[k]:
            bomb[1] += _BOMB_SPEED
            if _PLAYER_Y <= bomb[1] <= _PLAYER_Y + _PLAYER_H and \
                    self.player_x[k] <= bomb[0] <= \
                    self.player_x[k] + _PLAYER_W:
                self.lives[k] -= 1
                self.respawn[k] = 30
                self.bombs[k] = []
                return
            if bomb[1] < SCREEN_HEIGHT - 12:
                remaining.append(bomb)
        self.bombs[k] = remaining

    @hot_path
    def _step_slot(self, k: int, action: int) -> float:
        if self.respawn[k] > 0:
            self.respawn[k] -= 1
            return 0.0

        dx = int(self._act_dx[action])
        fire = bool(self._act_fire[action])
        self.player_x[k] = np.clip(
            self.player_x[k] + dx * SpaceInvaders.PLAYER_SPEED,
            8, SCREEN_WIDTH - 8 - _PLAYER_W)
        if fire and self.shot[k] is None:
            self.shot[k] = np.array([self.player_x[k] + _PLAYER_W / 2,
                                     _PLAYER_Y - 1])

        self._march_slot(k)
        self._drop_bombs_slot(k)
        reward = self._step_shot_slot(k)
        self._step_bombs_slot(k)

        # Aliens reached the ground: lose the game.
        rows_alive = np.where(self.alive[k].any(axis=1))[0]
        if rows_alive.size:
            lowest = self.grid_origin[k, 1] + \
                rows_alive[-1] * _ALIEN_GAP_Y + _ALIEN_H
            if lowest >= _PLAYER_Y:
                self.lives[k] = 0
        if not self.alive[k].any():
            self.wave[k] += 1
            self._new_wave_slot(k)
        return reward

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        rewards = np.zeros(slots.size)
        for kc in range(slots.size):
            rewards[kc] = self._step_slot(int(slots[kc]),
                                          int(actions[kc]))
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _BG)
        scr.fill_rect_slots(slots, SCREEN_HEIGHT - 12, 0, 12, SCREEN_WIDTH,
                            _GROUND)
        for k in slots:
            k = int(k)
            for i in range(self.lives[k]):
                scr.fill_rect(k, 8, 8 + 10 * i, 6, 6, _PLAYER)
            for row in range(_N_ROWS):
                for col in range(_N_COLS):
                    if self.alive[k, row, col]:
                        x, y = self._alien_rect(k, row, col)
                        scr.fill_rect(k, y, x, _ALIEN_H, _ALIEN_W, _ALIEN)
            if self.respawn[k] == 0:
                scr.fill_rect(k, _PLAYER_Y, self.player_x[k], _PLAYER_H,
                              _PLAYER_W, _PLAYER)
            shot = self.shot[k]
            if shot is not None:
                scr.fill_rect(k, shot[1], shot[0], 5, 2, _SHOT)
            for bomb in self.bombs[k]:
                scr.fill_rect(k, bomb[1], bomb[0], 5, 2, _BOMB)
