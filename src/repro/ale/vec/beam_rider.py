"""Batched Beam Rider: SoA lane/sector state, per-slot dynamics.

Enemy sets are ragged and spawn timing feeds the RNG, so frame dynamics
run per slot with the scalar game's exact expression sequence over
``(B,)``-array fields; rendering shares the batched frame buffer.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.beam_rider import (
    _BEAM,
    _BEAM_BOTTOM,
    _BEAM_TOP,
    _BG,
    _ENEMY,
    _ENEMY_SIZE,
    _N_BEAMS,
    _PLAYER,
    _PLAYER_H,
    _PLAYER_W,
    _PLAYER_Y,
    _SHOT,
    _SHOT_SPEED,
    _beam_x,
    BeamRider,
)
from repro.ale.vec.base import VecAtariGame
from repro.perf.hotpath import hot_path


class VecBeamRider(VecAtariGame):
    """Structure-of-arrays Beam Rider."""

    SCALAR_GAME = BeamRider

    def _alloc(self, batch: int) -> None:
        self.player_beam = np.zeros(batch, dtype=np.int64)
        self.enemies = [[] for _ in range(batch)]
        self.shot = [None] * batch
        self.spawn_timer = np.zeros(batch, dtype=np.int64)
        self.move_cooldown = np.zeros(batch, dtype=np.int64)
        self.sector = np.zeros(batch, dtype=np.int64)
        self.sector_remaining = np.zeros(batch, dtype=np.int64)
        self.sector_to_spawn = np.zeros(batch, dtype=np.int64)
        self.respawn = np.zeros(batch, dtype=np.int64)

    def _reset_slots(self, slots: np.ndarray) -> None:
        for k in slots:
            k = int(k)
            self.player_beam[k] = _N_BEAMS // 2
            self.sector[k] = 0
            self.respawn[k] = 0
            self._start_sector_slot(k)

    def _start_sector_slot(self, k: int) -> None:
        self.enemies[k] = []
        self.shot[k] = None
        self.spawn_timer[k] = BeamRider.SPAWN_PERIOD
        self.move_cooldown[k] = 0
        self.sector_remaining[k] = BeamRider.SECTOR_SIZE
        self.sector_to_spawn[k] = BeamRider.SECTOR_SIZE

    @hot_path
    def _spawn_enemy_slot(self, k: int) -> None:
        self.spawn_timer[k] -= 1
        if self.spawn_timer[k] > 0 or self.sector_to_spawn[k] == 0:
            return
        self.spawn_timer[k] = max(
            BeamRider.SPAWN_PERIOD - 4 * int(self.sector[k]), 25)
        beam = int(self.rngs[k].integers(_N_BEAMS))
        self.enemies[k].append(np.array([float(beam), _BEAM_TOP]))
        self.sector_to_spawn[k] -= 1

    @hot_path
    def _step_slot(self, k: int, action: int) -> float:
        if self.respawn[k] > 0:
            self.respawn[k] -= 1
            return 0.0

        dx = int(self._act_dx[action])
        fire = bool(self._act_fire[action])
        if self.move_cooldown[k] > 0:
            self.move_cooldown[k] -= 1
        elif dx != 0:
            new_beam = int(np.clip(self.player_beam[k] + dx, 0,
                                   _N_BEAMS - 1))
            if new_beam != self.player_beam[k]:
                self.player_beam[k] = new_beam
                self.move_cooldown[k] = BeamRider.MOVE_COOLDOWN
        if fire and self.shot[k] is None:
            self.shot[k] = np.array([float(self.player_beam[k]),
                                     _PLAYER_Y - 2])

        reward = 0.0
        self._spawn_enemy_slot(k)

        # Enemies descend along their beams.
        enemy_speed = BeamRider.ENEMY_SPEED * \
            (1.0 + 0.15 * int(self.sector[k]))
        remaining = []
        for enemy in self.enemies[k]:
            enemy[1] += enemy_speed
            if enemy[1] >= _BEAM_BOTTOM:
                if int(enemy[0]) == self.player_beam[k]:
                    self.lives[k] -= 1
                    self.respawn[k] = 30
                    self._start_sector_slot(k)
                    return reward
                # Escaped off the bottom; it re-enters at the top.
                enemy[1] = _BEAM_TOP
            remaining.append(enemy)
        self.enemies[k] = remaining

        # Shot flight.
        shot = self.shot[k]
        if shot is not None:
            shot[1] -= _SHOT_SPEED
            if shot[1] < _BEAM_TOP:
                self.shot[k] = None
            else:
                for index, enemy in enumerate(self.enemies[k]):
                    if int(enemy[0]) == int(shot[0]) and \
                            abs(enemy[1] - shot[1]) < _ENEMY_SIZE:
                        del self.enemies[k][index]
                        self.shot[k] = None
                        reward += BeamRider.ENEMY_SCORE
                        self.sector_remaining[k] -= 1
                        break

        if self.sector_remaining[k] == 0:
            reward += BeamRider.SECTOR_BONUS
            self.sector[k] += 1
            self._start_sector_slot(k)
        return reward

    @hot_path
    def _step_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> np.ndarray:
        rewards = np.zeros(slots.size)
        for kc in range(slots.size):
            rewards[kc] = self._step_slot(int(slots[kc]),
                                          int(actions[kc]))
        return rewards

    @hot_path
    def _render_slots(self, slots: np.ndarray) -> None:
        scr = self.screen
        scr.clear_slots(slots, _BG)
        for beam in range(_N_BEAMS):
            x = _beam_x(beam)
            scr.fill_rect_slots(slots, _BEAM_TOP, x - 1,
                                _BEAM_BOTTOM - _BEAM_TOP + 10, 2, _BEAM)
        for k in slots:
            k = int(k)
            for i in range(self.lives[k]):
                scr.fill_rect(k, 8, 8 + 10 * i, 6, 6, _PLAYER)
            for enemy in self.enemies[k]:
                x = _beam_x(int(enemy[0]))
                scr.fill_rect(k, enemy[1], x - _ENEMY_SIZE / 2,
                              _ENEMY_SIZE, _ENEMY_SIZE, _ENEMY)
            shot = self.shot[k]
            if shot is not None:
                x = _beam_x(int(shot[0]))
                scr.fill_rect(k, shot[1], x - 1, 6, 2, _SHOT)
            if self.respawn[k] == 0:
                x = _beam_x(int(self.player_beam[k]))
                scr.fill_rect(k, _PLAYER_Y, x - _PLAYER_W / 2, _PLAYER_H,
                              _PLAYER_W, _PLAYER)
