"""Structure-of-arrays batched ALE games (CuLE-style).

One :class:`~repro.ale.vec.base.VecAtariGame` holds ``B`` environments
of the same game in ``(B, ...)`` state arrays and advances all of them
per :meth:`step`, rendering into a shared ``(B, 210, 160, 3)`` frame
buffer.  Slot ``i`` is bit-identical to a scalar
:func:`repro.ale.make_game` env stepped with the same seed and actions
(see the equivalence suite in ``tests/test_ale_vec_equivalence.py``).
"""

from __future__ import annotations

import typing

from repro.ale.vec.base import BatchScreen, VecAtariGame
from repro.ale.vec.beam_rider import VecBeamRider
from repro.ale.vec.breakout import VecBreakout
from repro.ale.vec.pong import VecPong
from repro.ale.vec.qbert import VecQbert
from repro.ale.vec.seaquest import VecSeaquest
from repro.ale.vec.space_invaders import VecSpaceInvaders

_REGISTRY: typing.Dict[str, typing.Type[VecAtariGame]] = {
    "beam_rider": VecBeamRider,
    "breakout": VecBreakout,
    "pong": VecPong,
    "qbert": VecQbert,
    "seaquest": VecSeaquest,
    "space_invaders": VecSpaceInvaders,
}


def make_vec_game(name: str, batch: int) -> VecAtariGame:
    """Instantiate a batched game by its registry name."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    if key not in _REGISTRY:
        raise KeyError(f"unknown game {name!r}; available: "
                       f"{sorted(_REGISTRY)}")
    return _REGISTRY[key](batch)


__all__ = [
    "BatchScreen",
    "VecAtariGame",
    "VecBeamRider",
    "VecBreakout",
    "VecPong",
    "VecQbert",
    "VecSeaquest",
    "VecSpaceInvaders",
    "make_vec_game",
]
