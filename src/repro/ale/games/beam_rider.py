"""Simulated Beam Rider.

The player ship sits at the bottom of five energy beams and can jump
between adjacent beams; enemy saucers descend along the beams in sectors of
15 ships.  Shooting a saucer scores 44 points (the real game's base value);
clearing a sector awards a bonus and starts a faster one.  Collision with a
saucer costs a life.  Minimal action set mirrors the core of ALE Beam
Rider's nine actions.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH, AtariGame

_BG = (0, 0, 24)
_BEAM = (60, 60, 120)
_PLAYER = (210, 210, 64)
_ENEMY = (200, 72, 72)
_SHOT = (236, 236, 236)

_N_BEAMS = 5
_BEAM_TOP = 40.0
_BEAM_BOTTOM = 180.0
_PLAYER_Y = 180.0
_PLAYER_W = 10.0
_PLAYER_H = 8.0
_ENEMY_SIZE = 8.0
_SHOT_SPEED = 5.0


def _beam_x(beam: int) -> float:
    """Horizontal centre of a beam at the bottom of the screen."""
    spacing = SCREEN_WIDTH / (_N_BEAMS + 1)
    return spacing * (beam + 1)


class BeamRider(AtariGame):
    """Lane-based shooter with sectors of 15 enemies."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "RIGHT", "LEFT",
                       "RIGHTFIRE", "LEFTFIRE")
    START_LIVES = 3
    MAX_FRAMES = 40_000

    SECTOR_SIZE = 15
    ENEMY_SCORE = 44.0
    SECTOR_BONUS = 100.0
    ENEMY_SPEED = 1.1
    SPAWN_PERIOD = 55      # frames between enemy spawns
    MOVE_COOLDOWN = 10     # frames between beam jumps

    def __init__(self):
        super().__init__()
        self.player_beam = 0
        self.enemies: list = []      # each: [beam, y]
        self.shot: "np.ndarray | None" = None
        self._spawn_timer = 0
        self._move_cooldown = 0
        self._sector = 0
        self._sector_remaining = 0   # enemies left to destroy this sector
        self._sector_to_spawn = 0    # enemies left to spawn this sector
        self._respawn_timer = 0

    def _reset_game(self) -> None:
        self.player_beam = _N_BEAMS // 2
        self._sector = 0
        self._respawn_timer = 0
        self._start_sector()

    def _start_sector(self) -> None:
        self.enemies = []
        self.shot = None
        self._spawn_timer = self.SPAWN_PERIOD
        self._move_cooldown = 0
        self._sector_remaining = self.SECTOR_SIZE
        self._sector_to_spawn = self.SECTOR_SIZE

    def _enemy_speed(self) -> float:
        return self.ENEMY_SPEED * (1.0 + 0.15 * self._sector)

    def _spawn_enemy(self) -> None:
        self._spawn_timer -= 1
        if self._spawn_timer > 0 or self._sector_to_spawn == 0:
            return
        self._spawn_timer = max(self.SPAWN_PERIOD - 4 * self._sector, 25)
        beam = int(self.rng.integers(_N_BEAMS))
        self.enemies.append(np.array([float(beam), _BEAM_TOP]))
        self._sector_to_spawn -= 1

    def _step_frame(self, meaning: str) -> float:
        if self._respawn_timer > 0:
            self._respawn_timer -= 1
            return 0.0

        dx, _, fire = self.decode_move(meaning)
        if self._move_cooldown > 0:
            self._move_cooldown -= 1
        elif dx != 0:
            new_beam = int(np.clip(self.player_beam + dx, 0, _N_BEAMS - 1))
            if new_beam != self.player_beam:
                self.player_beam = new_beam
                self._move_cooldown = self.MOVE_COOLDOWN
        if fire and self.shot is None:
            self.shot = np.array([float(self.player_beam), _PLAYER_Y - 2])

        reward = 0.0
        self._spawn_enemy()

        # Enemies descend along their beams.
        remaining = []
        for enemy in self.enemies:
            enemy[1] += self._enemy_speed()
            if enemy[1] >= _BEAM_BOTTOM:
                if int(enemy[0]) == self.player_beam:
                    self.lives -= 1
                    self._respawn_timer = 30
                    self._start_sector()
                    return reward
                # Escaped off the bottom; it re-enters at the top (the
                # sector only ends when all 15 are destroyed).
                enemy[1] = _BEAM_TOP
            remaining.append(enemy)
        self.enemies = remaining

        # Shot flight.
        if self.shot is not None:
            self.shot[1] -= _SHOT_SPEED
            if self.shot[1] < _BEAM_TOP:
                self.shot = None
            else:
                for index, enemy in enumerate(self.enemies):
                    if int(enemy[0]) == int(self.shot[0]) and \
                            abs(enemy[1] - self.shot[1]) < _ENEMY_SIZE:
                        del self.enemies[index]
                        self.shot = None
                        reward += self.ENEMY_SCORE
                        self._sector_remaining -= 1
                        break

        if self._sector_remaining == 0:
            reward += self.SECTOR_BONUS
            self._sector += 1
            self._start_sector()
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_BG)
        for beam in range(_N_BEAMS):
            x = _beam_x(beam)
            screen.fill_rect(_BEAM_TOP, x - 1, _BEAM_BOTTOM - _BEAM_TOP + 10,
                             2, _BEAM)
        for i in range(self.lives):
            screen.fill_rect(8, 8 + 10 * i, 6, 6, _PLAYER)
        for enemy in self.enemies:
            x = _beam_x(int(enemy[0]))
            screen.fill_rect(enemy[1], x - _ENEMY_SIZE / 2, _ENEMY_SIZE,
                             _ENEMY_SIZE, _ENEMY)
        if self.shot is not None:
            x = _beam_x(int(self.shot[0]))
            screen.fill_rect(self.shot[1], x - 1, 6, 2, _SHOT)
        if self._respawn_timer == 0:
            x = _beam_x(self.player_beam)
            screen.fill_rect(_PLAYER_Y, x - _PLAYER_W / 2, _PLAYER_H,
                             _PLAYER_W, _PLAYER)
