"""The six simulated Atari 2600 games used in the paper's evaluation."""

from __future__ import annotations

import typing

from repro.ale.games.base import ALE_ACTIONS, AtariGame, Screen
from repro.ale.games.beam_rider import BeamRider
from repro.ale.games.breakout import Breakout
from repro.ale.games.pong import Pong
from repro.ale.games.qbert import Qbert
from repro.ale.games.seaquest import Seaquest
from repro.ale.games.space_invaders import SpaceInvaders

_REGISTRY: typing.Dict[str, typing.Type[AtariGame]] = {
    "beam_rider": BeamRider,
    "breakout": Breakout,
    "pong": Pong,
    "qbert": Qbert,
    "seaquest": Seaquest,
    "space_invaders": SpaceInvaders,
}

#: The paper's six games, in the order of Figure 12.
GAME_NAMES = ("beam_rider", "breakout", "pong", "qbert", "seaquest",
              "space_invaders")


def make_game(name: str) -> AtariGame:
    """Instantiate a game by its registry name (e.g. ``"breakout"``)."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    if key not in _REGISTRY:
        raise KeyError(f"unknown game {name!r}; available: "
                       f"{sorted(_REGISTRY)}")
    return _REGISTRY[key]()


__all__ = [
    "ALE_ACTIONS",
    "AtariGame",
    "BeamRider",
    "Breakout",
    "GAME_NAMES",
    "Pong",
    "Qbert",
    "Screen",
    "Seaquest",
    "SpaceInvaders",
    "make_game",
]
