"""Simulated Breakout.

Six rows of bricks (scores 7/7/4/4/1/1 from top to bottom, as on the real
cartridge), a paddle, a ball served by FIRE, and five lives.  The minimal
action set is the real ALE Breakout set: NOOP, FIRE, RIGHT, LEFT.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH, AtariGame

_BG = (0, 0, 0)
_WALL = (142, 142, 142)
_PADDLE = (200, 72, 72)
_BALL = (200, 72, 72)
_ROW_COLORS = ((200, 72, 72), (198, 108, 58), (180, 122, 48),
               (162, 162, 42), (72, 160, 72), (66, 72, 200))
_ROW_SCORES = (7, 7, 4, 4, 1, 1)

_N_ROWS = 6
_N_COLS = 18
_BRICK_TOP = 57
_BRICK_H = 6
_WALL_W = 8
_BRICK_W = (SCREEN_WIDTH - 2 * _WALL_W) / _N_COLS
_PADDLE_Y = 189.0
_PADDLE_W = 16.0
_PADDLE_H = 4.0
_BALL_SIZE = 3.0
_COURT_TOP = 32


class Breakout(AtariGame):
    """Brick-breaking with five lives and row-dependent scores."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "RIGHT", "LEFT")
    START_LIVES = 5
    MAX_FRAMES = 40_000

    PADDLE_SPEED = 4.0
    BALL_SPEED = 2.2

    def __init__(self):
        super().__init__()
        self.paddle_x = 0.0
        self.ball = np.zeros(2)
        self.ball_vel = np.zeros(2)
        self.bricks = np.ones((_N_ROWS, _N_COLS), dtype=bool)
        self.ball_in_play = False
        self._clears = 0

    def _reset_game(self) -> None:
        self.paddle_x = SCREEN_WIDTH / 2 - _PADDLE_W / 2
        self.bricks = np.ones((_N_ROWS, _N_COLS), dtype=bool)
        self.ball_in_play = False
        self._clears = 0

    def _launch(self) -> None:
        self.ball = np.array([self.paddle_x + _PADDLE_W / 2,
                              _PADDLE_Y - _BALL_SIZE - 1])
        angle = self.rng.uniform(np.pi * 0.25, np.pi * 0.75)
        self.ball_vel = np.array([np.cos(angle), -np.sin(angle)]) \
            * self.BALL_SPEED
        self.ball_in_play = True

    def _brick_hit(self) -> float:
        """Remove the brick under the ball (if any) and return its score."""
        row = int((self.ball[1] - _BRICK_TOP) // _BRICK_H)
        col = int((self.ball[0] - _WALL_W) // _BRICK_W)
        if 0 <= row < _N_ROWS and 0 <= col < _N_COLS \
                and self.bricks[row, col]:
            self.bricks[row, col] = False
            self.ball_vel[1] = -self.ball_vel[1]
            return float(_ROW_SCORES[row])
        return 0.0

    def _step_frame(self, meaning: str) -> float:
        if "RIGHT" in meaning:
            self.paddle_x += self.PADDLE_SPEED
        elif "LEFT" in meaning:
            self.paddle_x -= self.PADDLE_SPEED
        self.paddle_x = float(np.clip(self.paddle_x, _WALL_W,
                                      SCREEN_WIDTH - _WALL_W - _PADDLE_W))

        if not self.ball_in_play:
            if "FIRE" in meaning:
                self._launch()
            return 0.0

        self.ball += self.ball_vel
        reward = 0.0

        # Side walls and ceiling.
        if self.ball[0] <= _WALL_W:
            self.ball[0] = _WALL_W
            self.ball_vel[0] = abs(self.ball_vel[0])
        elif self.ball[0] >= SCREEN_WIDTH - _WALL_W - _BALL_SIZE:
            self.ball[0] = SCREEN_WIDTH - _WALL_W - _BALL_SIZE
            self.ball_vel[0] = -abs(self.ball_vel[0])
        if self.ball[1] <= _COURT_TOP:
            self.ball[1] = _COURT_TOP
            self.ball_vel[1] = abs(self.ball_vel[1])

        # Bricks.
        if _BRICK_TOP <= self.ball[1] < _BRICK_TOP + _N_ROWS * _BRICK_H:
            reward += self._brick_hit()
            if not self.bricks.any():
                # Cleared the wall: new wall, slightly faster ball (the
                # real game serves a second wall).
                self.bricks[:] = True
                self._clears += 1
                self.ball_vel *= 1.1

        # Paddle.
        if self.ball_vel[1] > 0 and \
                _PADDLE_Y - _BALL_SIZE <= self.ball[1] <= \
                _PADDLE_Y + _PADDLE_H and \
                self.paddle_x - _BALL_SIZE <= self.ball[0] <= \
                self.paddle_x + _PADDLE_W:
            offset = (self.ball[0] + _BALL_SIZE / 2 - self.paddle_x
                      - _PADDLE_W / 2) / (_PADDLE_W / 2)
            speed = float(np.linalg.norm(self.ball_vel))
            angle = np.pi / 2 - offset * np.pi / 3
            self.ball_vel = np.array([np.cos(angle), -np.sin(angle)]) * speed
            self.ball[1] = _PADDLE_Y - _BALL_SIZE

        # Missed: lose a life, ball must be re-served.
        if self.ball[1] > SCREEN_HEIGHT:
            self.lives -= 1
            self.ball_in_play = False
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_BG)
        screen.fill_rect(_COURT_TOP - 6, 0, 6, SCREEN_WIDTH, _WALL)
        screen.fill_rect(_COURT_TOP, 0, SCREEN_HEIGHT, _WALL_W, _WALL)
        screen.fill_rect(_COURT_TOP, SCREEN_WIDTH - _WALL_W,
                         SCREEN_HEIGHT, _WALL_W, _WALL)
        # Lives indicator.
        for i in range(self.lives):
            screen.fill_rect(10, 10 + 8 * i, 5, 5, _PADDLE)
        for row in range(_N_ROWS):
            color = _ROW_COLORS[row]
            for col in range(_N_COLS):
                if self.bricks[row, col]:
                    screen.fill_rect(_BRICK_TOP + row * _BRICK_H,
                                     _WALL_W + col * _BRICK_W,
                                     _BRICK_H - 1, _BRICK_W - 1, color)
        screen.fill_rect(_PADDLE_Y, self.paddle_x, _PADDLE_H, _PADDLE_W,
                         _PADDLE)
        if self.ball_in_play:
            screen.fill_rect(self.ball[1], self.ball[0], _BALL_SIZE,
                             _BALL_SIZE, _BALL)
