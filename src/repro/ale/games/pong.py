"""Simulated Pong.

The agent controls the right paddle; a scripted opponent with limited paddle
speed controls the left.  Like ALE Pong the minimal action set has six
actions (RIGHT/LEFT move the paddle up/down on the original hardware), the
reward is +1 when the opponent misses and -1 when the agent misses, and the
game ends when either side reaches 21 points.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH, AtariGame

_BG = (17, 72, 144)
_AGENT = (92, 186, 92)
_OPPONENT = (213, 130, 74)
_BALL = (236, 236, 236)
_WALL = (236, 236, 236)

_COURT_TOP = 34
_COURT_BOTTOM = 194
_PADDLE_H = 16.0
_PADDLE_W = 4.0
_BALL_SIZE = 4.0
_AGENT_X = SCREEN_WIDTH - 16.0
_OPPONENT_X = 12.0
_WIN_SCORE = 21


class Pong(AtariGame):
    """Two-paddle Pong against a tracking opponent."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "RIGHT", "LEFT",
                       "RIGHTFIRE", "LEFTFIRE")
    START_LIVES = 1
    MAX_FRAMES = 40_000

    PADDLE_SPEED = 4.0
    OPPONENT_SPEED = 2.6
    BALL_SPEED_X = 2.4
    BALL_SPEED_Y_MAX = 2.8

    def __init__(self):
        super().__init__()
        self.agent_y = 0.0
        self.opponent_y = 0.0
        self.ball = np.zeros(2)
        self.ball_vel = np.zeros(2)
        self.agent_score = 0
        self.opponent_score = 0
        self._serve_delay = 0
        self._serve_direction = 1

    def _reset_game(self) -> None:
        mid = (_COURT_TOP + _COURT_BOTTOM) / 2
        self.agent_y = mid - _PADDLE_H / 2
        self.opponent_y = mid - _PADDLE_H / 2
        self.agent_score = 0
        self.opponent_score = 0
        self._serve_direction = 1 if self.rng.random() < 0.5 else -1
        self._serve()

    def _serve(self) -> None:
        """Place the ball at the centre moving toward the receiving side."""
        self.ball = np.array([SCREEN_WIDTH / 2,
                              self.rng.uniform(_COURT_TOP + 20,
                                               _COURT_BOTTOM - 20)])
        vy = self.rng.uniform(-1.5, 1.5)
        self.ball_vel = np.array([self.BALL_SPEED_X * self._serve_direction,
                                  vy])
        self._serve_delay = 20

    def _move_paddles(self, meaning: str) -> None:
        # On the Atari console Pong maps RIGHT to up and LEFT to down.
        if "RIGHT" in meaning:
            self.agent_y -= self.PADDLE_SPEED
        elif "LEFT" in meaning:
            self.agent_y += self.PADDLE_SPEED
        self.agent_y = float(np.clip(self.agent_y, _COURT_TOP,
                                     _COURT_BOTTOM - _PADDLE_H))
        # Scripted opponent tracks the ball with bounded speed and a small
        # dead zone so it is beatable.
        target = self.ball[1] - _PADDLE_H / 2
        delta = target - self.opponent_y
        if abs(delta) > 4:
            step = float(np.clip(delta, -self.OPPONENT_SPEED,
                                 self.OPPONENT_SPEED))
            self.opponent_y += step
        self.opponent_y = float(np.clip(self.opponent_y, _COURT_TOP,
                                        _COURT_BOTTOM - _PADDLE_H))

    def _paddle_bounce(self, paddle_y: float) -> bool:
        """Check a paddle hit; on hit, reflect with english and speed up."""
        ball_y = self.ball[1]
        if not (paddle_y - _BALL_SIZE <= ball_y <= paddle_y + _PADDLE_H):
            return False
        offset = (ball_y + _BALL_SIZE / 2 - paddle_y - _PADDLE_H / 2) \
            / (_PADDLE_H / 2)
        self.ball_vel[0] = -self.ball_vel[0] * 1.03
        self.ball_vel[0] = float(np.clip(self.ball_vel[0], -4.0, 4.0))
        self.ball_vel[1] = float(np.clip(offset * self.BALL_SPEED_Y_MAX,
                                         -self.BALL_SPEED_Y_MAX,
                                         self.BALL_SPEED_Y_MAX))
        return True

    def _step_frame(self, meaning: str) -> float:
        self._move_paddles(meaning)
        if self._serve_delay > 0:
            self._serve_delay -= 1
            return 0.0

        self.ball += self.ball_vel
        # Wall bounces.
        if self.ball[1] <= _COURT_TOP:
            self.ball[1] = _COURT_TOP
            self.ball_vel[1] = abs(self.ball_vel[1])
        elif self.ball[1] >= _COURT_BOTTOM - _BALL_SIZE:
            self.ball[1] = _COURT_BOTTOM - _BALL_SIZE
            self.ball_vel[1] = -abs(self.ball_vel[1])

        reward = 0.0
        # Agent side (right).
        if self.ball_vel[0] > 0 and \
                self.ball[0] + _BALL_SIZE >= _AGENT_X:
            if self._paddle_bounce(self.agent_y):
                self.ball[0] = _AGENT_X - _BALL_SIZE
            elif self.ball[0] > SCREEN_WIDTH:
                self.opponent_score += 1
                reward = -1.0
                self._serve_direction = 1
                self._serve()
        # Opponent side (left).
        elif self.ball_vel[0] < 0 and \
                self.ball[0] <= _OPPONENT_X + _PADDLE_W:
            if self._paddle_bounce(self.opponent_y):
                self.ball[0] = _OPPONENT_X + _PADDLE_W
            elif self.ball[0] < -_BALL_SIZE:
                self.agent_score += 1
                reward = 1.0
                self._serve_direction = -1
                self._serve()

        if self.agent_score >= _WIN_SCORE or \
                self.opponent_score >= _WIN_SCORE:
            self.lives = 0
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_BG)
        screen.fill_rect(_COURT_TOP - 4, 0, 4, SCREEN_WIDTH, _WALL)
        screen.fill_rect(_COURT_BOTTOM, 0, 4, SCREEN_WIDTH, _WALL)
        # Score bars at the top: width encodes each side's points.
        screen.fill_rect(8, 10, 8, 3 * self.opponent_score, _OPPONENT)
        screen.fill_rect(8, SCREEN_WIDTH - 10 - 3 * self.agent_score,
                         8, 3 * self.agent_score, _AGENT)
        screen.fill_rect(self.opponent_y, _OPPONENT_X, _PADDLE_H, _PADDLE_W,
                         _OPPONENT)
        screen.fill_rect(self.agent_y, _AGENT_X, _PADDLE_H, _PADDLE_W,
                         _AGENT)
        if self._serve_delay == 0:
            screen.fill_rect(self.ball[1], self.ball[0], _BALL_SIZE,
                             _BALL_SIZE, _BALL)
