"""Simulated Seaquest.

A submarine hunts sharks (+20 each) and rescues divers while managing an
oxygen tank: oxygen drains underwater and refills at the surface; running
dry costs a life.  Surfacing with rescued divers scores a bonus.  The
minimal action set here is the six-action movement/fire subset (the real
cartridge exposes all 18; the strategy space — shoot, rescue, surface — is
preserved).
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH, AtariGame

_SKY = (120, 180, 240)
_WATER = (24, 59, 157)
_SUB = (210, 210, 64)
_SHARK = (92, 186, 92)
_DIVER = (236, 200, 96)
_TORPEDO = (236, 236, 236)
_OXYGEN_BAR = (214, 214, 214)
_OXYGEN_LOW = (200, 72, 72)

_SURFACE_Y = 46.0
_FLOOR_Y = 194.0
_SUB_W = 12.0
_SUB_H = 8.0
_SHARK_W = 10.0
_SHARK_H = 6.0
_DIVER_W = 6.0
_DIVER_H = 8.0
_TORPEDO_SPEED = 4.0


class Seaquest(AtariGame):
    """Underwater shooter with an oxygen resource loop."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "UP", "RIGHT", "LEFT", "DOWN")
    START_LIVES = 3
    MAX_FRAMES = 40_000

    SUB_SPEED = 2.5
    SHARK_SPEED = 1.4
    DIVER_SPEED = 0.8
    OXYGEN_MAX = 400.0
    SHARK_SCORE = 20.0
    DIVER_BONUS = 50.0
    SPAWN_PROBABILITY = 0.03
    DIVER_PROBABILITY = 0.01
    MAX_DIVERS_HELD = 6

    def __init__(self):
        super().__init__()
        self.sub = np.zeros(2)
        self.oxygen = 0.0
        self.sharks: list = []       # each: [x, y, direction]
        self.divers: list = []       # each: [x, y, direction]
        self.torpedo: "np.ndarray | None" = None
        self.divers_held = 0
        self._respawn_timer = 0

    def _reset_game(self) -> None:
        self.sub = np.array([SCREEN_WIDTH / 2, _SURFACE_Y + 30])
        self.oxygen = self.OXYGEN_MAX
        self.sharks = []
        self.divers = []
        self.torpedo = None
        self.divers_held = 0
        self._respawn_timer = 0

    def _spawn(self) -> None:
        if self.rng.random() < self.SPAWN_PROBABILITY:
            direction = 1 if self.rng.random() < 0.5 else -1
            x = -_SHARK_W if direction > 0 else SCREEN_WIDTH
            y = self.rng.uniform(_SURFACE_Y + 20, _FLOOR_Y - 10)
            self.sharks.append(np.array([x, y, direction]))
        if self.rng.random() < self.DIVER_PROBABILITY:
            direction = 1 if self.rng.random() < 0.5 else -1
            x = -_DIVER_W if direction > 0 else SCREEN_WIDTH
            y = self.rng.uniform(_SURFACE_Y + 30, _FLOOR_Y - 10)
            self.divers.append(np.array([x, y, direction]))

    def _lose_life(self) -> None:
        self.lives -= 1
        self._respawn_timer = 30
        self.sub = np.array([SCREEN_WIDTH / 2, _SURFACE_Y + 30])
        self.oxygen = self.OXYGEN_MAX
        self.torpedo = None
        self.divers_held = 0

    def _step_frame(self, meaning: str) -> float:
        if self._respawn_timer > 0:
            self._respawn_timer -= 1
            return 0.0

        dx, dy, fire = self.decode_move(meaning)
        self.sub[0] = float(np.clip(self.sub[0] + dx * self.SUB_SPEED,
                                    0, SCREEN_WIDTH - _SUB_W))
        self.sub[1] = float(np.clip(self.sub[1] + dy * self.SUB_SPEED,
                                    _SURFACE_Y, _FLOOR_Y - _SUB_H))
        if fire and self.torpedo is None:
            facing = 1.0 if dx >= 0 else -1.0
            self.torpedo = np.array([self.sub[0] + _SUB_W / 2,
                                     self.sub[1] + _SUB_H / 2, facing])

        reward = 0.0
        at_surface = self.sub[1] <= _SURFACE_Y + 1

        # Oxygen economy.
        if at_surface:
            refill = self.oxygen < self.OXYGEN_MAX
            self.oxygen = min(self.OXYGEN_MAX, self.oxygen + 8.0)
            if refill and self.oxygen >= self.OXYGEN_MAX \
                    and self.divers_held > 0:
                reward += self.DIVER_BONUS * self.divers_held
                self.divers_held = 0
        else:
            self.oxygen -= 1.0
            if self.oxygen <= 0:
                self._lose_life()
                return reward

        self._spawn()

        # Sharks drift horizontally; collide with the sub.
        remaining = []
        for shark in self.sharks:
            shark[0] += shark[2] * self.SHARK_SPEED
            if -_SHARK_W <= shark[0] <= SCREEN_WIDTH:
                remaining.append(shark)
        self.sharks = remaining
        for shark in self.sharks:
            if (abs(shark[0] - self.sub[0]) < (_SHARK_W + _SUB_W) / 2 and
                    abs(shark[1] - self.sub[1]) < (_SHARK_H + _SUB_H) / 2):
                self._lose_life()
                return reward

        # Divers drift; pick them up by touching.
        remaining = []
        for diver in self.divers:
            diver[0] += diver[2] * self.DIVER_SPEED
            touched = (abs(diver[0] - self.sub[0]) <
                       (_DIVER_W + _SUB_W) / 2 and
                       abs(diver[1] - self.sub[1]) <
                       (_DIVER_H + _SUB_H) / 2)
            if touched and self.divers_held < self.MAX_DIVERS_HELD:
                self.divers_held += 1
            elif -_DIVER_W <= diver[0] <= SCREEN_WIDTH:
                remaining.append(diver)
        self.divers = remaining

        # Torpedo flight and shark hits.
        if self.torpedo is not None:
            self.torpedo[0] += self.torpedo[2] * _TORPEDO_SPEED
            if not 0 <= self.torpedo[0] <= SCREEN_WIDTH:
                self.torpedo = None
            else:
                for index, shark in enumerate(self.sharks):
                    if (abs(shark[0] - self.torpedo[0]) < _SHARK_W and
                            abs(shark[1] - self.torpedo[1]) < _SHARK_H):
                        del self.sharks[index]
                        self.torpedo = None
                        reward += self.SHARK_SCORE
                        break
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_WATER)
        screen.fill_rect(0, 0, _SURFACE_Y, SCREEN_WIDTH, _SKY)
        # Oxygen gauge along the bottom.
        frac = max(self.oxygen, 0.0) / self.OXYGEN_MAX
        color = _OXYGEN_BAR if frac > 0.25 else _OXYGEN_LOW
        screen.fill_rect(SCREEN_HEIGHT - 10, 20, 6,
                         (SCREEN_WIDTH - 40) * frac, color)
        for i in range(self.lives):
            screen.fill_rect(8, 8 + 10 * i, 6, 6, _SUB)
        for i in range(self.divers_held):
            screen.fill_rect(8, SCREEN_WIDTH - 16 - 10 * i, 6, 6, _DIVER)
        for shark in self.sharks:
            screen.fill_rect(shark[1], shark[0], _SHARK_H, _SHARK_W, _SHARK)
        for diver in self.divers:
            screen.fill_rect(diver[1], diver[0], _DIVER_H, _DIVER_W, _DIVER)
        if self.torpedo is not None:
            screen.fill_rect(self.torpedo[1], self.torpedo[0], 2, 6,
                             _TORPEDO)
        if self._respawn_timer == 0:
            screen.fill_rect(self.sub[1], self.sub[0], _SUB_H, _SUB_W, _SUB)
