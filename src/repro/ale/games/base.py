"""Shared machinery for the simulated Atari games.

Each game renders to a 210x160 RGB screen (the real Atari 2600 / ALE frame
size), exposes a *minimal action set* drawn from the canonical 18 ALE
actions, tracks lives and score, and implements its dynamics at single-frame
granularity (frame-skipping is applied by the preprocessing wrappers, as in
the real pipeline).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.envs.base import Env
from repro.envs.spaces import Box, Discrete

SCREEN_HEIGHT = 210
SCREEN_WIDTH = 160

# The canonical ALE action meanings, in ALE order.
ALE_ACTIONS = (
    "NOOP", "FIRE", "UP", "RIGHT", "LEFT", "DOWN",
    "UPRIGHT", "UPLEFT", "DOWNRIGHT", "DOWNLEFT",
    "UPFIRE", "RIGHTFIRE", "LEFTFIRE", "DOWNFIRE",
    "UPRIGHTFIRE", "UPLEFTFIRE", "DOWNRIGHTFIRE", "DOWNLEFTFIRE",
)


class Screen:
    """A mutable RGB frame buffer with simple shape-drawing helpers."""

    def __init__(self, height: int = SCREEN_HEIGHT,
                 width: int = SCREEN_WIDTH):
        self.height = height
        self.width = width
        self.pixels = np.zeros((height, width, 3), dtype=np.uint8)

    def clear(self, color: typing.Tuple[int, int, int] = (0, 0, 0)) -> None:
        """Fill the whole frame with one colour."""
        self.pixels[:, :] = color

    def fill_rect(self, top: float, left: float, height: float, width: float,
                  color: typing.Tuple[int, int, int]) -> None:
        """Fill an axis-aligned rectangle, clipped to the frame."""
        t = min(max(int(round(top)), 0), self.height)
        l = min(max(int(round(left)), 0), self.width)
        b = min(max(int(round(top + height)), 0), self.height)
        r = min(max(int(round(left + width)), 0), self.width)
        if b > t and r > l:
            self.pixels[t:b, l:r] = color

    def copy(self) -> np.ndarray:
        """An independent uint8 copy of the frame."""
        return self.pixels.copy()


class AtariGame(Env):
    """Base class for the six simulated games.

    Subclasses set :attr:`ACTION_MEANINGS` (their minimal action set) and
    implement :meth:`_reset_game`, :meth:`_step_frame` and :meth:`_render`.
    The base class handles scoring, lives, the observation/action spaces and
    the gym-style protocol.
    """

    #: Minimal action set (subset of :data:`ALE_ACTIONS`); set by subclass.
    ACTION_MEANINGS: typing.Tuple[str, ...] = ("NOOP",)
    #: Number of lives at game start.
    START_LIVES = 1
    #: Hard frame limit per episode (guards against degenerate policies).
    MAX_FRAMES = 20_000

    def __init__(self):
        super().__init__()
        for meaning in self.ACTION_MEANINGS:
            if meaning not in ALE_ACTIONS:
                raise ValueError(f"unknown action meaning {meaning!r}")
        self.action_space = Discrete(len(self.ACTION_MEANINGS))
        self.observation_space = Box(0, 255,
                                     (SCREEN_HEIGHT, SCREEN_WIDTH, 3),
                                     dtype=np.uint8)
        self.screen = Screen()
        self.lives = 0
        self.score = 0.0
        self.frame = 0
        self._game_over = True

    # -- subclass hooks ---------------------------------------------------

    def _reset_game(self) -> None:
        """Initialise all game state for a new episode."""
        raise NotImplementedError

    def _step_frame(self, meaning: str) -> float:
        """Advance the game one frame under ``meaning``; return the reward.

        Life loss is signalled by decrementing :attr:`lives`; the episode
        ends when lives reach zero (or the subclass sets
        ``self._game_over``).
        """
        raise NotImplementedError

    def _render(self) -> None:
        """Draw the current state into :attr:`screen`."""
        raise NotImplementedError

    # -- Env protocol ------------------------------------------------------

    def action_meanings(self) -> typing.Tuple[str, ...]:
        """The minimal action set of this game."""
        return self.ACTION_MEANINGS

    def reset(self) -> np.ndarray:
        self.lives = self.START_LIVES
        self.score = 0.0
        self.frame = 0
        self._game_over = False
        self._reset_game()
        self._render()
        return self.screen.copy()

    def step(self, action: int):
        if self._game_over:
            raise RuntimeError("step() called on a finished game; "
                               "call reset()")
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for "
                             f"{type(self).__name__}")
        meaning = self.ACTION_MEANINGS[int(action)]
        reward = float(self._step_frame(meaning))
        self.frame += 1
        self.score += reward
        if self.lives <= 0 or self.frame >= self.MAX_FRAMES:
            self._game_over = True
        self._render()
        info = {"lives": self.lives, "score": self.score}
        return self.screen.copy(), reward, self._game_over, info

    @property
    def game_over(self) -> bool:
        """True once the episode has ended."""
        return self._game_over

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def decode_move(meaning: str) -> typing.Tuple[int, int, bool]:
        """Decode an ALE action meaning to (dx, dy, fire).

        ``dx``/``dy`` are in {-1, 0, 1}; positive x is rightward, positive
        y is downward (screen coordinates).
        """
        fire = "FIRE" in meaning
        dx = (1 if "RIGHT" in meaning else 0) - \
            (1 if "LEFT" in meaning else 0)
        dy = (1 if "DOWN" in meaning else 0) - (1 if "UP" in meaning else 0)
        return dx, dy, fire
