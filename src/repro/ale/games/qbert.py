"""Simulated Q*bert.

A 7-row pyramid of cubes; hopping onto a cube flips it to the target colour
for +25 points; colouring the whole pyramid awards a bonus and starts the
next (faster) round.  A purple ball spawns at the top and bounces down,
costing a life on contact.  Hops take several frames (the real game's hop
animation), which makes the control problem non-trivial under frame skip.
Minimal action set matches ALE Q*bert: NOOP, FIRE, UP, RIGHT, LEFT, DOWN.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.ale.games.base import SCREEN_WIDTH, AtariGame

_BG = (40, 40, 40)
_CUBE_OFF = (182, 138, 20)
_CUBE_ON = (60, 120, 210)
_PLAYER = (210, 100, 30)
_ENEMY = (146, 70, 192)

_N_ROWS = 7
_CUBE_W = 18.0
_CUBE_H = 14.0
_TOP_X = SCREEN_WIDTH / 2
_TOP_Y = 40.0

# Diagonal hops: (d_row, d_col) in pyramid coordinates.
_HOPS = {
    "UP": (-1, 0),       # up-right on screen
    "LEFT": (-1, -1),    # up-left
    "DOWN": (1, 1),      # down-right
    "RIGHT": (1, 0),     # down-left... see note below
}
# Note: the real game maps the four diagonals to the joystick diagonals;
# here each of the four directions is one diagonal hop, which preserves the
# control structure (choose one of four neighbours) without diagonal
# joystick actions.


def _cube_center(row: int, col: int) -> typing.Tuple[float, float]:
    """Screen position of cube (row, col); row 0 is the apex."""
    x = _TOP_X + (col - row / 2.0) * _CUBE_W
    y = _TOP_Y + row * _CUBE_H
    return x, y


class Qbert(AtariGame):
    """Pyramid-hopping with a pursuing enemy ball."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "UP", "RIGHT", "LEFT", "DOWN")
    START_LIVES = 4
    MAX_FRAMES = 40_000

    HOP_FRAMES = 8          # frames a hop takes
    ENEMY_HOP_FRAMES = 12   # enemy is slower than the player
    ENEMY_SPAWN_DELAY = 120
    CUBE_SCORE = 25.0
    ROUND_BONUS = 100.0

    def __init__(self):
        super().__init__()
        self.colored = np.zeros((_N_ROWS, _N_ROWS), dtype=bool)
        self.player = (0, 0)
        self.enemy: "typing.Optional[typing.Tuple[int, int]]" = None
        self._hop_timer = 0
        self._pending_hop: "typing.Optional[typing.Tuple[int, int]]" = None
        self._enemy_timer = 0
        self._round = 0
        self._respawn_timer = 0

    @staticmethod
    def _valid(row: int, col: int) -> bool:
        return 0 <= row < _N_ROWS and 0 <= col <= row

    def _reset_game(self) -> None:
        self._round = 0
        self._start_round()

    def _start_round(self) -> None:
        self.colored[:] = False
        self.player = (0, 0)
        self.enemy = None
        self._hop_timer = 0
        self._pending_hop = None
        self._enemy_timer = self.ENEMY_SPAWN_DELAY
        self._respawn_timer = 0
        self._color(0, 0)

    def _color(self, row: int, col: int) -> float:
        if not self.colored[row, col]:
            self.colored[row, col] = True
            return self.CUBE_SCORE
        return 0.0

    def _pyramid_done(self) -> bool:
        return all(self.colored[row, col]
                   for row in range(_N_ROWS) for col in range(row + 1))

    def _step_enemy(self) -> None:
        if self.enemy is None:
            self._enemy_timer -= 1
            if self._enemy_timer <= 0:
                self.enemy = (0, 0)
                self._enemy_timer = self.ENEMY_HOP_FRAMES
            return
        self._enemy_timer -= 1
        if self._enemy_timer > 0:
            return
        self._enemy_timer = max(self.ENEMY_HOP_FRAMES - self._round, 6)
        row, col = self.enemy
        # The ball bounces downhill, drifting toward the player's column.
        if row + 1 < _N_ROWS:
            prefer_right = self.player[1] > col
            dcol = 1 if prefer_right else 0
            if self.rng.random() < 0.25:
                dcol = 1 - dcol
            self.enemy = (row + 1, col + dcol)
        else:
            # Fell off the bottom; respawn at the top after a delay.
            self.enemy = None
            self._enemy_timer = self.ENEMY_SPAWN_DELAY

    def _step_frame(self, meaning: str) -> float:
        if self._respawn_timer > 0:
            self._respawn_timer -= 1
            return 0.0

        reward = 0.0
        if self._hop_timer > 0:
            self._hop_timer -= 1
            if self._hop_timer == 0 and self._pending_hop is not None:
                row, col = self._pending_hop
                self._pending_hop = None
                if self._valid(row, col):
                    self.player = (row, col)
                    reward += self._color(row, col)
                else:
                    # Hopped off the pyramid.
                    self.lives -= 1
                    self._respawn_timer = 30
                    self.player = (0, 0)
        elif meaning in _HOPS:
            d_row, d_col = _HOPS[meaning]
            self._pending_hop = (self.player[0] + d_row,
                                 self.player[1] + d_col)
            self._hop_timer = self.HOP_FRAMES

        self._step_enemy()
        if self.enemy is not None and self.enemy == self.player \
                and self._respawn_timer == 0:
            self.lives -= 1
            self._respawn_timer = 30
            self.enemy = None
            self._enemy_timer = self.ENEMY_SPAWN_DELAY
            self.player = (0, 0)

        if self._pyramid_done():
            reward += self.ROUND_BONUS
            self._round += 1
            self._start_round()
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_BG)
        for i in range(self.lives):
            screen.fill_rect(8, 8 + 10 * i, 6, 6, _PLAYER)
        for row in range(_N_ROWS):
            for col in range(row + 1):
                x, y = _cube_center(row, col)
                color = _CUBE_ON if self.colored[row, col] else _CUBE_OFF
                screen.fill_rect(y, x - _CUBE_W / 2 + 1,
                                 _CUBE_H - 2, _CUBE_W - 2, color)
        if self._respawn_timer == 0:
            px, py = _cube_center(*self.player)
            lift = 4.0 if self._hop_timer > 0 else 0.0
            screen.fill_rect(py - 8 - lift, px - 4, 8, 8, _PLAYER)
        if self.enemy is not None:
            ex, ey = _cube_center(*self.enemy)
            screen.fill_rect(ey - 7, ex - 3, 7, 7, _ENEMY)
