"""Simulated Space Invaders.

A 6x6 grid of aliens marches side to side and descends; the player cannon
shoots upward (one shot on screen at a time, as on the real cartridge) and
dodges alien bombs behind the action timer.  Row scores are 30/25/20/15/10/5
points from top to bottom.  Minimal action set matches ALE Space Invaders:
NOOP, FIRE, RIGHT, LEFT, RIGHTFIRE, LEFTFIRE.
"""

from __future__ import annotations

import numpy as np

from repro.ale.games.base import SCREEN_HEIGHT, SCREEN_WIDTH, AtariGame

_BG = (0, 0, 0)
_GROUND = (78, 50, 30)
_PLAYER = (50, 205, 50)
_ALIEN = (134, 134, 29)
_BOMB = (213, 130, 74)
_SHOT = (236, 236, 236)
_SHIELD = (181, 83, 40)

_N_ROWS = 6
_N_COLS = 6
_ROW_SCORES = (30, 25, 20, 15, 10, 5)
_ALIEN_W = 8.0
_ALIEN_H = 8.0
_ALIEN_GAP_X = 16.0
_ALIEN_GAP_Y = 14.0
_PLAYER_Y = 185.0
_PLAYER_W = 8.0
_PLAYER_H = 6.0
_SHOT_SPEED = 5.0
_BOMB_SPEED = 1.6


class SpaceInvaders(AtariGame):
    """March-and-shoot with descending alien waves and three lives."""

    ACTION_MEANINGS = ("NOOP", "FIRE", "RIGHT", "LEFT",
                       "RIGHTFIRE", "LEFTFIRE")
    START_LIVES = 3
    MAX_FRAMES = 40_000

    PLAYER_SPEED = 3.0
    MARCH_PERIOD = 16      # frames between alien steps
    MARCH_STEP = 4.0
    DESCEND_STEP = 8.0
    BOMB_PROBABILITY = 0.02

    def __init__(self):
        super().__init__()
        self.player_x = 0.0
        self.alive = np.ones((_N_ROWS, _N_COLS), dtype=bool)
        self.grid_origin = np.zeros(2)  # (x, y) of the grid's top-left
        self.march_direction = 1
        self.shot: "np.ndarray | None" = None
        self.bombs: list = []
        self._march_timer = 0
        self._wave = 0
        self._respawn_timer = 0

    def _reset_game(self) -> None:
        self.player_x = SCREEN_WIDTH / 2 - _PLAYER_W / 2
        self._wave = 0
        self._respawn_timer = 0
        self._new_wave()

    def _new_wave(self) -> None:
        self.alive = np.ones((_N_ROWS, _N_COLS), dtype=bool)
        self.grid_origin = np.array([24.0, 40.0 + 4.0 * self._wave])
        self.march_direction = 1
        self.shot = None
        self.bombs = []
        self._march_timer = self.MARCH_PERIOD

    def _alien_rect(self, row: int, col: int):
        x = self.grid_origin[0] + col * _ALIEN_GAP_X
        y = self.grid_origin[1] + row * _ALIEN_GAP_Y
        return x, y

    def _grid_extent(self):
        cols_alive = np.where(self.alive.any(axis=0))[0]
        left = self.grid_origin[0] + cols_alive[0] * _ALIEN_GAP_X
        right = self.grid_origin[0] + cols_alive[-1] * _ALIEN_GAP_X \
            + _ALIEN_W
        return left, right

    def _march(self) -> None:
        self._march_timer -= 1
        if self._march_timer > 0:
            return
        self._march_timer = self.MARCH_PERIOD
        left, right = self._grid_extent()
        nxt_left = left + self.march_direction * self.MARCH_STEP
        nxt_right = right + self.march_direction * self.MARCH_STEP
        if nxt_left < 8 or nxt_right > SCREEN_WIDTH - 8:
            self.march_direction *= -1
            self.grid_origin[1] += self.DESCEND_STEP
        else:
            self.grid_origin[0] += self.march_direction * self.MARCH_STEP

    def _drop_bombs(self) -> None:
        if self.rng.random() >= self.BOMB_PROBABILITY * self.alive.sum():
            return
        cols = np.where(self.alive.any(axis=0))[0]
        col = int(self.rng.choice(cols))
        row = int(np.where(self.alive[:, col])[0][-1])
        x, y = self._alien_rect(row, col)
        self.bombs.append(np.array([x + _ALIEN_W / 2, y + _ALIEN_H]))

    def _step_shot(self) -> float:
        if self.shot is None:
            return 0.0
        self.shot[1] -= _SHOT_SPEED
        if self.shot[1] < 20:
            self.shot = None
            return 0.0
        # Hit test against aliens.
        for row in range(_N_ROWS):
            for col in range(_N_COLS):
                if not self.alive[row, col]:
                    continue
                x, y = self._alien_rect(row, col)
                if x <= self.shot[0] <= x + _ALIEN_W and \
                        y <= self.shot[1] <= y + _ALIEN_H:
                    self.alive[row, col] = False
                    self.shot = None
                    return float(_ROW_SCORES[row])
        return 0.0

    def _step_bombs(self) -> None:
        remaining = []
        for bomb in self.bombs:
            bomb[1] += _BOMB_SPEED
            if _PLAYER_Y <= bomb[1] <= _PLAYER_Y + _PLAYER_H and \
                    self.player_x <= bomb[0] <= self.player_x + _PLAYER_W:
                self.lives -= 1
                self._respawn_timer = 30
                self.bombs = []
                return
            if bomb[1] < SCREEN_HEIGHT - 12:
                remaining.append(bomb)
        self.bombs = remaining

    def _step_frame(self, meaning: str) -> float:
        if self._respawn_timer > 0:
            self._respawn_timer -= 1
            return 0.0

        dx, _, fire = self.decode_move(meaning)
        self.player_x = float(np.clip(self.player_x
                                      + dx * self.PLAYER_SPEED,
                                      8, SCREEN_WIDTH - 8 - _PLAYER_W))
        if fire and self.shot is None:
            self.shot = np.array([self.player_x + _PLAYER_W / 2,
                                  _PLAYER_Y - 1])

        self._march()
        self._drop_bombs()
        reward = self._step_shot()
        self._step_bombs()

        # Aliens reached the ground: lose the game.
        rows_alive = np.where(self.alive.any(axis=1))[0]
        if rows_alive.size:
            lowest = self.grid_origin[1] + rows_alive[-1] * _ALIEN_GAP_Y \
                + _ALIEN_H
            if lowest >= _PLAYER_Y:
                self.lives = 0
        if not self.alive.any():
            self._wave += 1
            self._new_wave()
        return reward

    def _render(self) -> None:
        screen = self.screen
        screen.clear(_BG)
        screen.fill_rect(SCREEN_HEIGHT - 12, 0, 12, SCREEN_WIDTH, _GROUND)
        for i in range(self.lives):
            screen.fill_rect(8, 8 + 10 * i, 6, 6, _PLAYER)
        for row in range(_N_ROWS):
            for col in range(_N_COLS):
                if self.alive[row, col]:
                    x, y = self._alien_rect(row, col)
                    screen.fill_rect(y, x, _ALIEN_H, _ALIEN_W, _ALIEN)
        if self._respawn_timer == 0:
            screen.fill_rect(_PLAYER_Y, self.player_x, _PLAYER_H,
                             _PLAYER_W, _PLAYER)
        if self.shot is not None:
            screen.fill_rect(self.shot[1], self.shot[0], 5, 2, _SHOT)
        for bomb in self.bombs:
            screen.fill_rect(bomb[1], bomb[0], 5, 2, _BOMB)
