"""Analytical reproductions of the paper's accounting tables."""

from repro.analysis.linebuffers import LineBufferPlan, line_buffer_table
from repro.analysis.model_card import CalibrationEntry, model_card, \
    model_card_rows
from repro.analysis.roofline import (
    accumulation_frequency_table,
    operational_intensity,
    roofline_time,
)
from repro.analysis.traffic import TrafficReport, traffic_table

__all__ = [
    "CalibrationEntry",
    "LineBufferPlan",
    "TrafficReport",
    "accumulation_frequency_table",
    "line_buffer_table",
    "model_card",
    "model_card_rows",
    "operational_intensity",
    "roofline_time",
    "traffic_table",
]
