"""Line-buffer sizing (paper Table 3 / Section 4.5.1).

For each computation stage, Table 3 gives the width and count of the line
buffers feeding each PE port:

* **FW** — input port 0 reads the input feature map through one line
  buffer of width C_in (stitched from ceil(C_in / 16) buffer rows and
  shifted one word per cycle); port 1 reads the FW-layout parameter buffer
  directly (width min(N_PE, O), no line buffer required); the output port
  uses one N_PE-wide line buffer for scattering.
* **GC** — K input-feature lines plus M_GC = floor(N_PE / K^2)
  output-gradient lines.
* **BW** — parameters in the BW layout (no line buffer) plus
  M_BW = floor(N_PE / (M_w * C_in)) output-gradient lines, with
  M_w = floor(O / K^2).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.nn.network import LayerSpec, NetworkTopology


@dataclasses.dataclass
class LineBufferPlan:
    """One Table 3 row instantiated for a concrete layer."""

    stage: str                 # FW | GC | BW
    port: str                  # Input 0 | Input 1 | Output
    buffer: str                # which on-chip buffer feeds it
    width: int                 # words per line buffer
    count: int                 # number of line buffers

    @property
    def register_words(self) -> int:
        """Total register words this plan occupies."""
        return self.width * self.count


def _m_w(spec: LayerSpec) -> int:
    """M_w = floor(O / K^2): input channels per BW-layout buffer row."""
    return max(1, spec.out_channels // spec.kernel ** 2)


def layer_line_buffers(spec: LayerSpec,
                       n_pe: int = 64) -> typing.List[LineBufferPlan]:
    """Instantiate Table 3 for one layer."""
    c_in = spec.in_width            # input feature-map width
    c_out = spec.out_width          # output feature-map width
    ksq = spec.kernel ** 2
    m_gc = max(1, n_pe // ksq)
    m_bw = max(1, n_pe // (_m_w(spec) * max(c_in, 1)))
    param_width = min(n_pe, spec.out_channels)
    return [
        LineBufferPlan("FW", "Input 0", "Input feature map", c_in, 1),
        LineBufferPlan("FW", "Input 1", "Parameter (FW layout)",
                       param_width, 0),
        LineBufferPlan("FW", "Output", "Output feature map", n_pe, 1),
        LineBufferPlan("GC", "Input 0", "Input feature map", c_in,
                       spec.kernel),
        LineBufferPlan("GC", "Input 1", "Output feature map (gradient)",
                       c_out, m_gc),
        LineBufferPlan("GC", "Output", "Gradient", n_pe, 1),
        LineBufferPlan("BW", "Input 0", "Parameter (BW layout)",
                       param_width, 0),
        LineBufferPlan("BW", "Input 1", "Output feature map (gradient)",
                       c_out, m_bw),
        LineBufferPlan("BW", "Output", "Input feature map (gradient)",
                       n_pe, 1),
    ]


def line_buffer_table(topology: NetworkTopology, n_pe: int = 64
                      ) -> typing.Dict[str, typing.List[LineBufferPlan]]:
    """Table 3 instantiated for every parameterised layer."""
    return {spec.name: layer_line_buffers(spec, n_pe)
            for spec in topology.layers}


def stitching_rows(width: int, row_words: int = 16) -> int:
    """Buffer rows the BCU stitches to build one ``width``-word line
    (Section 4.5: needed when the feature map is wider than 16 words)."""
    return -(-width // row_words)
