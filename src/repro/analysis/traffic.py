r"""Off-chip data traffic per A3C training routine (paper Table 2).

Table 2 itemises the theoretical DRAM traffic of one agent routine with
t_max = 5 (six batch-1 inferences including the bootstrap, one batch-5
training task, one parameter sync):

=================  ===============  ===========  ===========
Task               Data             Load         Store
=================  ===============  ===========  ===========
Parameter sync     Global theta     2,592 KB x1  --
\                  Local theta      --           2,592 KB x1
Inference x6       Local theta      2,592 KB x6  --
\                  Input data       110 KB x6    --
Training           Global theta     2,592 KB x1  2,592 KB x1
\                  RMS g            2,592 KB x1  2,592 KB x1
\                  Local theta      2,592 KB x1  --
\                  Input data       110 KB x5    --
=================  ===============  ===========  ===========

The paper's "2,592 KB" parameter-set size corresponds to the FC3 weight
matrix alone (2592 x 256 words x 4 B); the full Table 1 parameter set is
2,673 KB.  We compute the itemisation from the real topology and expose
both the paper's approximate figure and the exact one.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.fpga.timing import TimingModel
from repro.nn.network import NetworkTopology

KB = 1024


@dataclasses.dataclass
class TrafficItem:
    """One Table 2 row."""

    task: str
    data: str
    load_bytes: int
    store_bytes: int
    count: int = 1

    @property
    def total_load(self) -> int:
        return self.load_bytes * self.count

    @property
    def total_store(self) -> int:
        return self.store_bytes * self.count


@dataclasses.dataclass
class TrafficReport:
    """The Table 2 itemisation plus totals."""

    items: typing.List[TrafficItem]

    @property
    def total_load_bytes(self) -> int:
        return sum(item.total_load for item in self.items)

    @property
    def total_store_bytes(self) -> int:
        return sum(item.total_store for item in self.items)

    def rows(self) -> typing.List[typing.Dict[str, object]]:
        """Printable rows in Table 2 order (KB, with counts)."""
        rows = []
        for item in self.items:
            rows.append({
                "task": item.task,
                "data": item.data,
                "load": f"{item.load_bytes / KB:,.0f}KB x{item.count}"
                if item.load_bytes else "-",
                "store": f"{item.store_bytes / KB:,.0f}KB x{item.count}"
                if item.store_bytes else "-",
            })
        rows.append({
            "task": "Total", "data": "",
            "load": f"{self.total_load_bytes / KB:,.0f}KB",
            "store": f"{self.total_store_bytes / KB:,.0f}KB",
        })
        return rows


def traffic_table(topology: NetworkTopology, t_max: int = 5,
                  include_feature_maps: bool = False) -> TrafficReport:
    """Compute the Table 2 itemisation for a topology.

    ``include_feature_maps`` extends the paper's accounting with the
    feature-map save/reload traffic of Section 4.3, which Table 2 omits
    (it is ~1.5 % of the total).
    """
    timing = TimingModel(topology)
    theta = timing.total_param_words() * 4
    input_data = timing.input_words(1) * 4
    items = [
        TrafficItem("Parameter sync", "Global theta", theta, 0),
        TrafficItem("Parameter sync", "Local theta", 0, theta),
        TrafficItem("Inference task", "Local theta", theta, 0,
                    count=t_max + 1),
        TrafficItem("Inference task", "Input data", input_data, 0,
                    count=t_max + 1),
        TrafficItem("Training task", "Global theta", theta, theta),
        TrafficItem("Training task", "RMS g", theta, theta),
        TrafficItem("Training task", "Local theta", theta, 0),
        TrafficItem("Training task", "Input data", input_data, 0,
                    count=t_max),
    ]
    if include_feature_maps:
        fmaps = sum(timing.feature_words(spec, 1) * 4
                    for spec in topology.layers)
        items.append(TrafficItem("Inference task", "Feature maps (4.3)",
                                 0, fmaps, count=t_max + 1))
        items.append(TrafficItem("Training task", "Feature maps (4.3)",
                                 fmaps * t_max, 0))
        items.append(TrafficItem("Training task", "Gradients",
                                 0, theta))
    return TrafficReport(items=items)
