"""Operational intensity and roofline analysis (paper Sections 3.2-3.3).

The paper's core performance argument: A3C's tiny batches give its DNN
tasks a low *operational intensity* (FLOPs per off-chip byte), so a GPU's
huge peak FLOPs are unreachable and achievable performance is set by the
off-chip bandwidth and by fixed overheads.  These helpers quantify that
argument for any layer/batch combination and back the Section 3.2 bench.
"""

from __future__ import annotations

import typing

from repro.nn.network import WORD_BYTES, LayerSpec, NetworkTopology


def stage_flops(spec: LayerSpec, batch: int, stage: str) -> float:
    """FLOPs of one layer stage (a MAC is two FLOPs)."""
    if stage == "fw":
        return 2.0 * spec.macs_fw(batch)
    if stage == "bw":
        return 2.0 * spec.macs_bw(batch)
    if stage == "gc":
        return 2.0 * spec.macs_gc(batch)
    raise ValueError(f"unknown stage {stage!r}")


def stage_traffic_bytes(spec: LayerSpec, batch: int) -> float:
    """Off-chip bytes of one layer stage: the parameters plus the
    input/output feature maps (the same for FW, BW and GC)."""
    return (spec.num_params
            + batch * (spec.num_inputs + spec.num_outputs)) * WORD_BYTES


def operational_intensity(spec: LayerSpec, batch: int,
                          stage: str = "fw") -> float:
    """FLOPs per off-chip byte for one layer stage.

    Off-chip traffic counts the parameters plus the input/output feature
    maps; increasing the batch amortises the parameter traffic — which is
    exactly what A3C cannot do (Section 3.2).
    """
    return stage_flops(spec, batch, stage) / stage_traffic_bytes(spec,
                                                                 batch)


def roofline_time(spec: LayerSpec, batch: int, peak_flops: float,
                  mem_bandwidth: float, stage: str = "fw") -> float:
    """Roofline execution time: max of compute-limit and memory-limit."""
    return max(stage_flops(spec, batch, stage) / peak_flops,
               stage_traffic_bytes(spec, batch) / mem_bandwidth)


def intensity_table(topology: NetworkTopology,
                    batches: typing.Sequence[int] = (1, 5, 32, 256)
                    ) -> typing.List[typing.Dict[str, object]]:
    """Per-layer operational intensity across batch sizes.

    Shows the Section 2.2/3.2 contrast: convolution layers have high
    intensity even at batch 1, fully-connected layers only at large
    batches A3C cannot use.
    """
    rows = []
    for spec in topology.layers:
        row: typing.Dict[str, object] = {"layer": spec.name,
                                         "kind": spec.kind}
        for batch in batches:
            row[f"oi_b{batch}"] = operational_intensity(spec, batch)
        rows.append(row)
    return rows


def accumulation_frequency_table(topology: NetworkTopology, batch: int = 5
                                 ) -> typing.List[typing.Dict[str, object]]:
    """Accumulation frequency per layer and stage (Section 4.2.1).

    The spread of these values across one training pass is the paper's
    argument for the controllable-accumulation PE over fixed adder trees
    or systolic arrays.
    """
    rows = []
    for spec in topology.layers:
        rows.append({
            "layer": spec.name,
            "fw": spec.accumulation_frequency_fw,
            "gc": spec.accumulation_frequency_gc(batch),
            "bw": spec.out_channels * spec.kernel ** 2
            // max(spec.stride ** 2, 1),
        })
    return rows
