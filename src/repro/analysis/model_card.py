"""The reproduction's model card: every calibration constant, its paper
anchor, and a live self-check.

Because the paper's testbed is simulated, the credibility of Figures
8-11 rests on how the models' free constants were pinned.  This module
collects them in one auditable place and re-derives the anchor checks on
demand — the bench suite asserts them, the CLI can print them.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.layout_experiment import GPULayoutExperiment
from repro.gpu.platform import A3CcuDNNPlatform
from repro.fpga.platform import FA3CPlatform, FPGAConfig
from repro.nn.network import NetworkTopology


@dataclasses.dataclass
class CalibrationEntry:
    """One constant, where it lives, what pins it, and a live check."""

    name: str
    value: typing.Union[float, int, str]
    anchor: str
    check: str             # "ok" / "off" plus the measured value


def _check(condition: bool, measured: str) -> str:
    return f"{'ok' if condition else 'OFF'} ({measured})"


def model_card(topology: NetworkTopology) -> typing.List[CalibrationEntry]:
    """Build the full calibration table with live checks."""
    cal = GPUCalibration()
    fpga = FPGAConfig()
    cudnn = A3CcuDNNPlatform(topology)
    layout = GPULayoutExperiment(topology)
    fa3c = FA3CPlatform.fa3c(topology)

    launch_fraction = cudnn.launch_fraction()
    layout_slowdown = layout.inference_slowdown_with_bw_layout()
    fpga_overhead = 8 * fa3c.task_launch_overhead() / (
        6 * fa3c.inference_latency() + fa3c.training_latency(5)
        + fa3c.sync_latency())

    return [
        CalibrationEntry(
            "gpu.launch_overhead", cal.launch_overhead,
            "Section 3.4: launches > 38% of A3C kernel time",
            _check(launch_fraction > 0.38,
                   f"fraction={launch_fraction:.3f}")),
        CalibrationEntry(
            "gpu.kernel_efficiency", cal.kernel_efficiency,
            "A3C-cuDNN saturates near 2,550/1.279 ~ 2,000 IPS "
            "(Section 5.2)",
            _check(1_700 < 5 / (6 * cudnn.inference_seconds()
                                + cudnn.training_seconds(5)
                                + cudnn.sync_seconds()) < 2_400,
                   f"cap={5 / (6 * cudnn.inference_seconds() + cudnn.training_seconds(5) + cudnn.sync_seconds()):.0f} IPS")),
        CalibrationEntry(
            "gpu.opencl_slowdown", cal.opencl_slowdown,
            "Section 5.5: custom OpenCL within 12% of cuDNN",
            _check(cal.opencl_slowdown <= 1.12,
                   f"{cal.opencl_slowdown:.2f}x")),
        CalibrationEntry(
            "gpu.mismatched_layout_slowdown",
            cal.mismatched_layout_slowdown,
            "Figure 11: BW-layout inference 41.7% slower",
            _check(abs(layout_slowdown - 0.417) < 0.1,
                   f"slowdown={layout_slowdown:.3f}")),
        CalibrationEntry(
            "fpga.clock_hz", fpga.clock_hz,
            "Table 5: 180 MHz core clock",
            _check(fpga.clock_hz == 180e6, "fixed")),
        CalibrationEntry(
            "fpga.n_pe x cu_pairs", f"{fpga.n_pe} x {fpga.cu_pairs}",
            "Section 5.1: two CU pairs, 64 PEs per CU",
            _check(fpga.n_pe == 64 and fpga.cu_pairs == 2, "fixed")),
        CalibrationEntry(
            "fpga.dram_efficiency", fpga.dram_efficiency,
            "FA3C > 2,550 IPS at n = 16 (Section 5.2)",
            _check(fa3c.training_latency(5) < 3e-3,
                   f"train={fa3c.training_latency(5) * 1e3:.2f} ms")),
        CalibrationEntry(
            "fpga.task_overhead", "24 cycles",
            "Section 3.4: FPGA task overhead < 0.02%",
            _check(fpga_overhead < 2e-4,
                   f"fraction={fpga_overhead * 100:.4f}%")),
        CalibrationEntry(
            "fpga.num_rus", fpga.num_rus,
            "Section 4.2.3: 4 RUs saturate a 16-word channel "
            "(8 for the 2-channel global stripe)",
            _check(fpga.num_rus == 4 * fpga.global_channels, "fixed")),
        CalibrationEntry(
            "host.step_time", cal.host_step_time,
            "ALE frame x4 + preprocessing + softmax on Table 5 Xeons",
            "assumption (see GPUCalibration docstring)"),
    ]


def model_card_rows(topology: NetworkTopology
                    ) -> typing.List[typing.Dict[str, object]]:
    """The card as printable rows."""
    return [dataclasses.asdict(entry) for entry in model_card(topology)]
