"""Quantized-datapath numerics: int8 fake-quant and fp16 storage.

FA3C's datapath is fp32 end to end; the precision-parametric backends
model narrower *storage* formats with fp32 accumulation, the standard
FPGA inference recipe:

* **fp16** — operands are stored (and moved over DRAM/PCIe) as IEEE
  half floats but every MAC accumulates in fp32.  Emulated by rounding
  through ``np.float16`` and widening back.
* **int8** — symmetric per-tensor quantization: a tensor is mapped to
  ``[-127, 127]`` by a positive scale (``amax / 127``), stored as int8,
  and dequantized to fp32 before the MAC.  Emulated as *fake quant*
  (quantize-dequantize in fp32) so the rest of the stack stays fp32.

A :class:`PrecisionPolicy` bundles the coercions a network applies at
layer boundaries.  The int8 policy supports two modes:

* **dynamic** — each tensor is scaled by its own amax at every call
  (what the forward pass uses before calibration);
* **calibrated** — :meth:`Int8Policy.observe` records per-key amax
  ranges over sample batches, :meth:`~Int8Policy.freeze` locks them, and
  subsequent calls reuse the frozen scales.  Frozen scales make the
  fake-quant function piecewise constant around a point, which is what
  lets ``nn/gradcheck.py`` validate the straight-through gradients.

Everything here is elementwise, so no accumulation-order rules apply;
the module is declared in ``[tool.repro-lint.fp32-order]
quantized-modules`` to document that exemption explicitly.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.precision import Precision, resolve_precision

#: Symmetric int8 uses the full signed range minus the asymmetric -128
#: code, so quantize(x) == -quantize(-x) holds exactly.
INT8_LEVELS = 127


def int8_scale(x: np.ndarray) -> float:
    """Symmetric per-tensor scale: ``amax / 127`` (1.0 for all-zero)."""
    amax = float(np.max(np.abs(np.asarray(x, dtype=np.float32)))) \
        if np.asarray(x).size else 0.0
    return amax / INT8_LEVELS if amax > 0.0 else 1.0


def quantize_int8(x: np.ndarray, scale: float) -> np.ndarray:
    """Quantize fp32 values to int8 codes with round-half-to-even."""
    if scale <= 0.0:
        raise ValueError(f"int8 scale must be positive: {scale}")
    codes = np.rint(np.asarray(x, dtype=np.float32) / np.float32(scale))
    return np.clip(codes, -INT8_LEVELS, INT8_LEVELS).astype(np.int8)


def dequantize_int8(codes: np.ndarray, scale: float) -> np.ndarray:
    """Map int8 codes back to fp32: ``codes * scale``."""
    return codes.astype(np.float32) * np.float32(scale)


def fake_quant_int8(x: np.ndarray,
                    scale: typing.Optional[float] = None) -> np.ndarray:
    """Quantize-dequantize in fp32 (dynamic per-tensor scale if omitted).

    The result is within ``scale / 2`` of the input everywhere inside the
    representable range ``[-127 * scale, 127 * scale]``.
    """
    if scale is None:
        scale = int8_scale(x)
    return dequantize_int8(quantize_int8(x, scale), scale)


def fp16_storage(x: np.ndarray) -> np.ndarray:
    """Round fp32 values through IEEE fp16 storage and widen back."""
    return np.asarray(x, dtype=np.float32) \
        .astype(np.float16).astype(np.float32)


class PrecisionPolicy:
    """Coercion a quantized datapath applies at layer boundaries.

    Calling the policy coerces a tensor to its storage precision and
    returns fp32 (accumulation precision).  ``key`` names the tensor for
    calibrated modes; dynamic policies ignore it.
    """

    #: The precision name this policy realises.
    name = "fp32"

    def __call__(self, x: np.ndarray, key: str = "") -> np.ndarray:
        raise NotImplementedError

    def observe(self, key: str, x: np.ndarray) -> None:
        """Record calibration statistics for ``key`` (no-op by default)."""

    def freeze(self) -> None:
        """Lock calibration; later calls reuse the frozen scales."""


class Fp16Policy(PrecisionPolicy):
    """fp16 storage, fp32 accumulate — stateless rounding."""

    name = "fp16"

    def __call__(self, x: np.ndarray, key: str = "") -> np.ndarray:
        return fp16_storage(x)


class Int8Policy(PrecisionPolicy):
    """Symmetric per-tensor int8 fake quant (dynamic until frozen)."""

    name = "int8"

    def __init__(self):
        self._amax: typing.Dict[str, float] = {}
        self.frozen = False

    def observe(self, key: str, x: np.ndarray) -> None:
        if self.frozen:
            raise RuntimeError("int8 policy is frozen; cannot observe")
        amax = float(np.max(np.abs(np.asarray(x, dtype=np.float32)))) \
            if np.asarray(x).size else 0.0
        self._amax[key] = max(self._amax.get(key, 0.0), amax)

    def freeze(self) -> None:
        self.frozen = True

    def scale_for(self, key: str, x: np.ndarray) -> float:
        """The scale a call with this ``key`` uses right now."""
        if self.frozen and key in self._amax:
            amax = self._amax[key]
            return amax / INT8_LEVELS if amax > 0.0 else 1.0
        return int8_scale(x)

    def scales(self) -> typing.Dict[str, float]:
        """Frozen per-key scales (calibration snapshot for tests/docs)."""
        return {key: amax / INT8_LEVELS if amax > 0.0 else 1.0
                for key, amax in sorted(self._amax.items())}

    def __call__(self, x: np.ndarray, key: str = "") -> np.ndarray:
        return fake_quant_int8(x, self.scale_for(key, x))


def policy_for(precision) -> typing.Optional[PrecisionPolicy]:
    """The coercion policy for a precision (``None`` for fp32).

    Returning ``None`` rather than an identity policy keeps the fp32
    reference path free of any extra calls — bit-identity by
    construction, not by careful rounding.
    """
    spec: Precision = resolve_precision(precision)
    if spec.name == "fp16":
        return Fp16Policy()
    if spec.name == "int8":
        return Int8Policy()
    return None
