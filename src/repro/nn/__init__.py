"""From-scratch NumPy deep-neural-network library.

Implements exactly the three computation types FA3C distinguishes
(paper Section 2.3):

* **FW** — forward propagation: input feature maps x parameters ->
  output feature maps.
* **BW** — backward propagation: output-feature gradients x parameters ->
  input-feature gradients.
* **GC** — gradient computation: input feature maps x output-feature
  gradients -> parameter gradients.

Each layer exposes ``forward`` / ``backward`` / ``grad`` methods mapping to
those stages, so the FPGA simulator can account cycles per stage with the
same decomposition the paper uses.
"""

from repro.nn.initializers import he_uniform, torch_dqn_init, zeros
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, ReLU
from repro.nn.losses import (
    A3CLossResult,
    a3c_loss_and_head_gradients,
    entropy,
    log_softmax,
    softmax,
)
from repro.nn.network import A3CNetwork, LayerSpec, NetworkTopology, Sequential
from repro.nn.network_lstm import (
    RecurrentPolicyNetwork,
    lstm_a3c_network,
    mlp_lstm_network,
)
from repro.nn.recurrent import LSTMCell, LSTMState
from repro.nn.optim import SGD, Adam, Optimizer, RMSProp, SharedRMSProp
from repro.nn.parameters import ParameterSet

__all__ = [
    "A3CLossResult",
    "A3CNetwork",
    "Adam",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "LayerSpec",
    "NetworkTopology",
    "Optimizer",
    "LSTMCell",
    "LSTMState",
    "ParameterSet",
    "RecurrentPolicyNetwork",
    "ReLU",
    "RMSProp",
    "SGD",
    "Sequential",
    "SharedRMSProp",
    "a3c_loss_and_head_gradients",
    "entropy",
    "lstm_a3c_network",
    "mlp_lstm_network",
    "he_uniform",
    "log_softmax",
    "softmax",
    "torch_dqn_init",
    "zeros",
]
