"""The A3C objective and its analytic head gradients.

The paper (Section 2.2) minimises

* policy objective  f_pi(θ) = -log pi(a_t|s_t; θ) * (R_t - V(s_t; θ))
  plus an entropy regularisation term, and
* value objective   f_V(θ)  = (R_t - V(s_t; θ))^2.

FA3C computes the softmax and the objective-function gradients on the host
(Section 4.1) and sends only the head gradients (ΔObjective) to the FPGA;
:func:`a3c_loss_and_head_gradients` is exactly that host-side computation.
"""

from __future__ import annotations

import dataclasses

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def entropy(probs: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Shannon entropy per row of a probability matrix."""
    return -(probs * np.log(probs + eps)).sum(axis=-1)


@dataclasses.dataclass
class A3CLossResult:
    """Loss values and head gradients for one training batch."""

    policy_loss: float          # sum over batch, entropy term included
    value_loss: float           # 0.5 * sum (R - V)^2
    entropy: float              # sum of per-step policy entropies
    dlogits: np.ndarray         # (N, A) gradient w.r.t. policy logits
    dvalues: np.ndarray         # (N,) gradient w.r.t. value outputs

    @property
    def total_loss(self) -> float:
        return self.policy_loss + self.value_loss


def a3c_loss_and_head_gradients(logits: np.ndarray, values: np.ndarray,
                                actions: np.ndarray, returns: np.ndarray,
                                entropy_beta: float = 0.01,
                                policy=None) -> A3CLossResult:
    """Evaluate the A3C objective and its gradients at the network heads.

    Args:
        logits: ``(N, A)`` policy logits from FW.
        values: ``(N,)`` value outputs from FW.
        actions: ``(N,)`` integer actions taken.
        returns: ``(N,)`` bootstrapped n-step returns R_t.
        entropy_beta: weight of the entropy regularisation term.
        policy: optional :class:`~repro.nn.quant.PrecisionPolicy`
            modelling the PCIe readback of FW outputs at storage
            precision before the host-side loss (``None`` = fp32 host).

    The losses are *summed* over the batch (the original A3C accumulates
    gradients over the t_max steps rather than averaging).  The advantage
    (R - V) is treated as a constant in the policy objective, i.e. the value
    head receives gradient only from the value loss.
    """
    if policy is not None:
        logits = policy(np.asarray(logits, dtype=np.float32),
                        "head.logits")
        values = policy(np.asarray(values, dtype=np.float32),
                        "head.values")
    n, num_actions = logits.shape
    if actions.shape != (n,) or returns.shape != (n,) \
            or values.shape != (n,):
        raise ValueError("batch dimensions of logits/values/actions/returns "
                         "do not agree")
    if actions.min(initial=0) < 0 or actions.max(initial=0) >= num_actions:
        raise ValueError("action index out of range")

    probs = softmax(logits)
    log_probs = log_softmax(logits)
    advantages = returns - values

    one_hot = np.zeros_like(probs)
    one_hot[np.arange(n), actions] = 1.0

    step_entropy = entropy(probs)
    chosen_log_prob = log_probs[np.arange(n), actions]
    # axis=None: deliberate full reductions outside the bit-exact
    # contract (loss scalars are diagnostics, not datapath values).
    policy_loss = float(-(chosen_log_prob * advantages).sum(axis=None)
                        - entropy_beta * step_entropy.sum(axis=None))
    value_loss = float(0.5 * (advantages ** 2).sum(axis=None))

    # d f_pi / d logits = (pi - onehot) * advantage
    #                     + beta * pi * (log pi + H)      (entropy term)
    dlogits = (probs - one_hot) * advantages[:, None]
    dlogits += entropy_beta * probs * (
        np.log(probs + 1e-12) + step_entropy[:, None])
    # d f_V / d V = (V - R)
    dvalues = (values - returns).astype(np.float32)

    return A3CLossResult(policy_loss=policy_loss, value_loss=value_loss,
                         entropy=float(step_entropy.sum(axis=None)),
                         dlogits=dlogits.astype(np.float32),
                         dvalues=dvalues)
