"""Numerical gradient checking utilities for the test suite.

Central-difference gradients against which the analytic BW/GC stages are
validated.  Kept in the library (not the tests) so users extending the layer
set can validate their own layers the same way.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.nn.parameters import ParameterSet


def numerical_gradient(f: typing.Callable[[], float], array: np.ndarray,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array``.

    ``f`` must read ``array`` by reference (the array is perturbed
    in-place and restored).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = f()
        flat[index] = original - eps
        minus = f()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_param_gradients(loss_fn: typing.Callable[[], float],
                          params: ParameterSet, analytic: ParameterSet,
                          eps: float = 1e-3, rtol: float = 2e-2,
                          atol: float = 1e-3) -> typing.Dict[str, float]:
    """Compare analytic parameter gradients against numerical ones.

    Returns the max absolute error per parameter; raises ``AssertionError``
    on mismatch beyond tolerance.
    """
    errors = {}
    for name in analytic:
        numeric = numerical_gradient(loss_fn, params[name], eps)
        got = analytic[name].astype(np.float64)
        error = np.abs(got - numeric)
        scale = np.maximum(np.abs(numeric), np.abs(got))
        bad = error > (atol + rtol * scale)
        if bad.any():
            worst = float(error.max())
            raise AssertionError(
                f"gradient mismatch for {name}: max abs err {worst:.3e}")
        errors[name] = float(error.max())
    return errors
