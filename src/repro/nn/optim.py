"""Optimizers, including the shared RMSProp used by A3C.

A3C applies gradients from every agent to the *global* parameters using
RMSProp with shared (not per-agent) statistics ``g`` (paper Sections 2.2 and
4.2.3):

    g     <- rho * g + (1 - rho) * grad^2
    theta <- theta - eta * grad / sqrt(g + eps)

The FPGA RMSProp module (:mod:`repro.fpga.rmsprop_module`) implements the
same recurrence as a pipelined datapath; the two are cross-validated in the
test suite.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.nn.parameters import ParameterSet


class Optimizer:
    """Base class: applies gradient sets to a parameter set in-place."""

    def __init__(self, learning_rate: float):
        self.learning_rate = learning_rate

    def step(self, params: ParameterSet, grads: ParameterSet,
             learning_rate: typing.Optional[float] = None) -> None:
        """Apply one update.  ``learning_rate`` overrides the stored rate
        (A3C anneals the rate linearly to zero over training)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, params: ParameterSet, grads: ParameterSet,
             learning_rate: typing.Optional[float] = None) -> None:
        lr = self.learning_rate if learning_rate is None else learning_rate
        for name in grads:
            params[name] -= lr * grads[name]


class RMSProp(Optimizer):
    """RMSProp with the A3C hyper-parameters as defaults.

    ``rho`` (decay) and ``eps`` follow the original A3C publication; the
    statistics ``g`` live in a :class:`ParameterSet` so they can be shared,
    checkpointed, or mirrored into the FPGA simulator's DRAM image.
    """

    def __init__(self, learning_rate: float = 7e-4, rho: float = 0.99,
                 eps: float = 0.1):
        super().__init__(learning_rate)
        self.rho = rho
        self.eps = eps
        self._g: typing.Optional[ParameterSet] = None

    @property
    def statistics(self) -> typing.Optional[ParameterSet]:
        """The shared second-moment estimates (``None`` before first step)."""
        return self._g

    def attach(self, params: ParameterSet) -> None:
        """Pre-allocate statistics matching ``params`` (all zeros)."""
        self._g = params.zeros_like()

    def adopt_statistics(self, g: ParameterSet) -> None:
        """Use an existing statistics set in place of allocating one.

        The multiprocessing backend passes shared-memory views here so
        every worker updates the same ``g``, as A3C requires.
        """
        self._g = g

    def step(self, params: ParameterSet, grads: ParameterSet,
             learning_rate: typing.Optional[float] = None) -> None:
        lr = self.learning_rate if learning_rate is None else learning_rate
        if self._g is None:
            self.attach(params)
        g = self._g
        for name in grads:
            grad = grads[name]
            g[name] *= self.rho
            g[name] += (1.0 - self.rho) * grad * grad
            params[name] -= lr * grad / np.sqrt(g[name] + self.eps)


class SharedRMSProp(RMSProp):
    """Alias emphasising that statistics are shared across A3C agents.

    Functionally identical to :class:`RMSProp`; a single instance must be
    used for all agents so that ``g`` is shared, as in the original A3C.
    """


class Adam(Optimizer):
    """Adam optimizer (used by some A3C re-implementations; provided for
    the hyper-parameter ablation benches)."""

    def __init__(self, learning_rate: float = 1e-4, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: typing.Optional[ParameterSet] = None
        self._v: typing.Optional[ParameterSet] = None
        self._t = 0

    def step(self, params: ParameterSet, grads: ParameterSet,
             learning_rate: typing.Optional[float] = None) -> None:
        lr = self.learning_rate if learning_rate is None else learning_rate
        if self._m is None:
            self._m = params.zeros_like()
            self._v = params.zeros_like()
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for name in grads:
            grad = grads[name]
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            params[name] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
