"""Checkpointing: save/restore parameters and optimizer state.

The paper trains for 100M steps; any practical run of this reproduction
needs resumable state.  Checkpoints are plain ``.npz`` archives holding
the parameter arrays (prefixed ``theta/``), the shared RMSProp statistics
(``g/``), and a JSON metadata blob (global step, config echo).
"""

from __future__ import annotations

import json
import typing

import numpy as np

from repro.nn.optim import RMSProp
from repro.nn.parameters import ParameterSet


def save_checkpoint(path: str, params: ParameterSet,
                    optimizer: typing.Optional[RMSProp] = None,
                    metadata: typing.Optional[dict] = None) -> None:
    """Write a checkpoint archive.

    ``metadata`` must be JSON-serialisable (global step, learning-rate
    schedule position, game name, ...).
    """
    arrays: typing.Dict[str, np.ndarray] = {}
    for name, value in params.items():
        arrays[f"theta/{name}"] = value
    if optimizer is not None and optimizer.statistics is not None:
        for name, value in optimizer.statistics.items():
            arrays[f"g/{name}"] = value
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(path: str) -> typing.Tuple[
        ParameterSet, typing.Optional[ParameterSet], dict]:
    """Read a checkpoint; returns (params, rmsprop statistics or None,
    metadata)."""
    with np.load(path) as archive:
        params = ParameterSet()
        statistics = ParameterSet()
        metadata: dict = {}
        for key in archive.files:
            if key.startswith("theta/"):
                params[key[len("theta/"):]] = archive[key]
            elif key.startswith("g/"):
                statistics[key[len("g/"):]] = archive[key]
            elif key == "metadata":
                metadata = json.loads(archive[key].tobytes()
                                      .decode("utf-8"))
    return params, (statistics if len(statistics) else None), metadata


def restore_optimizer(optimizer: RMSProp,
                      statistics: ParameterSet) -> None:
    """Load saved second-moment estimates into an optimizer."""
    optimizer._g = statistics.copy()
