"""Network containers and the A3C network topology (paper Table 1).

:class:`A3CNetwork` implements the exact DNN of Table 1: two convolutions,
one hidden fully-connected layer, and a final fully-connected layer whose
outputs are split into action logits and the state value.  The paper's
hardware pads the final layer to 32 outputs (8K parameters = 256x32 + 32);
we keep that padding so the software model and the FPGA simulator account
identical parameter traffic.

:class:`NetworkTopology` is the hardware-facing description (channel counts,
kernel sizes, feature-map dimensions) consumed by the FPGA timing model,
the GPU cost model, and the off-chip-traffic calculator.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.nn.initializers import torch_dqn_init, zeros
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, ReLU
from repro.nn.parameters import ParameterSet
from repro.nn.quant import policy_for

Shape = typing.Tuple[int, ...]

WORD_BYTES = 4  # single-precision float, the only datatype FA3C uses


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """Hardware-facing description of one parameterised layer.

    A fully-connected layer is described as a convolution with
    ``R = C = K = 1`` (paper Section 4.2.1): each input feature is its own
    input channel and each output feature its own output channel.
    """

    name: str
    kind: str                 # "conv" or "dense"
    in_channels: int          # I
    out_channels: int         # O
    kernel: int               # K (1 for dense)
    stride: int               # S (1 for dense)
    in_height: int            # input feature-map height (1 for dense)
    in_width: int             # input feature-map width  (C_in for dense: 1)
    out_height: int           # R
    out_width: int            # C

    @property
    def num_weights(self) -> int:
        """Weight count, excluding bias."""
        return self.out_channels * self.in_channels * self.kernel ** 2

    @property
    def num_params(self) -> int:
        """Weights plus biases."""
        return self.num_weights + self.out_channels

    @property
    def num_outputs(self) -> int:
        """Output feature-map size O*R*C."""
        return self.out_channels * self.out_height * self.out_width

    @property
    def num_inputs(self) -> int:
        """Input feature-map size."""
        return self.in_channels * self.in_height * self.in_width

    @property
    def accumulation_frequency_fw(self) -> int:
        """Values accumulated per FW output element: I*K^2 + 1 (bias)."""
        return self.in_channels * self.kernel ** 2 + 1

    def accumulation_frequency_gc(self, batch_size: int) -> int:
        """Values accumulated per GC weight gradient.

        For dense layers this equals the batch size (Section 4.2.1); for
        convolutions each weight additionally reduces over output pixels.
        """
        return batch_size * self.out_height * self.out_width

    def macs_fw(self, batch_size: int) -> int:
        """Multiply-accumulate count of the FW stage."""
        return batch_size * self.num_outputs * \
            (self.in_channels * self.kernel ** 2)

    def macs_bw(self, batch_size: int) -> int:
        """MAC count of the BW stage (same volume as FW)."""
        return self.macs_fw(batch_size)

    def macs_gc(self, batch_size: int) -> int:
        """MAC count of the GC stage."""
        return self.num_weights * self.accumulation_frequency_gc(batch_size)


@dataclasses.dataclass(frozen=True)
class NetworkTopology:
    """The ordered parameterised layers of a network, plus the input shape."""

    input_shape: Shape                      # (C, H, W)
    layers: typing.Tuple[LayerSpec, ...]

    @property
    def num_params(self) -> int:
        """Total parameters over all layers."""
        return sum(spec.num_params for spec in self.layers)

    @property
    def param_bytes(self) -> int:
        """Total fp32 parameter storage in bytes."""
        return self.num_params * WORD_BYTES

    @property
    def input_features(self) -> int:
        return int(np.prod(self.input_shape))

    @property
    def input_bytes(self) -> int:
        return self.input_features * WORD_BYTES

    def feature_map_bytes(self) -> int:
        """fp32 bytes of all intermediate output feature maps."""
        return sum(spec.num_outputs for spec in self.layers) * WORD_BYTES

    def table1_rows(self) -> typing.List[typing.Dict[str, object]]:
        """Rows matching paper Table 1 (layer, #params, #output features)."""
        rows = [{"layer": "Input", "params": 0,
                 "outputs": self.input_features}]
        for spec in self.layers:
            label = spec.name
            if spec.kind == "conv":
                label += f" (filter: {spec.kernel}x{spec.kernel}, " \
                         f"stride: {spec.stride})"
            rows.append({"layer": label, "params": spec.num_params,
                         "outputs": spec.num_outputs})
        return rows


class Sequential:
    """A plain feed-forward stack of layers sharing one ParameterSet."""

    def __init__(self, layers: typing.Sequence[Layer], input_shape: Shape):
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        # Validate shape compatibility eagerly.
        shape = self.input_shape
        self._shapes = [shape]
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    @property
    def output_shape(self) -> Shape:
        return self._shapes[-1]

    def set_policy(self, policy) -> None:
        """Install one precision policy on every layer (``None`` = fp32).

        The shared policy gives the quantized datapath one calibration
        state across the stack; keys stay distinct per layer/tensor.
        """
        for layer in self.layers:
            layer.policy = policy

    def init_params(self, rng: typing.Optional[np.random.Generator] = None,
                    weight_init=torch_dqn_init,
                    bias_init=zeros) -> ParameterSet:
        """Fresh parameters for every layer, in layer order."""
        params = ParameterSet()
        for layer in self.layers:
            layer.init_params(params, rng, weight_init, bias_init)
        return params

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        """FW through every layer, caching activations for training."""
        for layer in self.layers:
            x = layer.forward(x, params)
        return x

    def backward_and_grads(self, dy: np.ndarray, params: ParameterSet
                           ) -> typing.Tuple[np.ndarray, ParameterSet]:
        """Run GC then BW per layer from last to first (paper Section 4.3).

        Returns the gradient w.r.t. the network input and the parameter
        gradients.
        """
        grads = ParameterSet()
        for layer in reversed(self.layers):
            layer.grad_params(dy, grads)
            dy = layer.backward_input(dy, params)
        return dy, grads

    def topology(self) -> NetworkTopology:
        """Hardware-facing description of the parameterised layers."""
        specs = []
        for index, layer in enumerate(self.layers):
            in_shape = self._shapes[index]
            out_shape = self._shapes[index + 1]
            if isinstance(layer, Conv2D):
                specs.append(LayerSpec(
                    name=layer.name, kind="conv",
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel=layer.kernel, stride=layer.stride,
                    in_height=in_shape[1], in_width=in_shape[2],
                    out_height=out_shape[1], out_width=out_shape[2]))
            elif isinstance(layer, Dense):
                specs.append(LayerSpec(
                    name=layer.name, kind="dense",
                    in_channels=layer.in_features,
                    out_channels=layer.out_features,
                    kernel=1, stride=1,
                    in_height=1, in_width=1, out_height=1, out_width=1))
        return NetworkTopology(input_shape=self.input_shape,
                               layers=tuple(specs))


class A3CNetwork:
    """The Table 1 network with softmax policy and linear value heads.

    The final fully-connected layer (FC4) has ``fc4_width`` outputs
    (default 32, as the paper's hardware pads it); logits occupy the first
    ``num_actions`` slots and the value the next one.  Padding outputs
    receive zero gradient, so they never train and never affect results.
    """

    DEFAULT_INPUT_SHAPE: Shape = (4, 84, 84)

    def __init__(self, num_actions: int,
                 input_shape: Shape = DEFAULT_INPUT_SHAPE,
                 fc4_width: int = 32, hidden: int = 256,
                 conv_channels: typing.Tuple[int, int] = (16, 32),
                 precision: str = "fp32"):
        if num_actions + 1 > fc4_width:
            raise ValueError(f"fc4_width={fc4_width} too small for "
                             f"{num_actions} actions plus a value output")
        self.num_actions = num_actions
        self.fc4_width = fc4_width
        c1, c2 = conv_channels
        in_c = input_shape[0]
        conv1 = Conv2D("Conv1", in_c, c1, kernel=8, stride=4)
        conv2 = Conv2D("Conv2", c1, c2, kernel=4, stride=2)
        conv2_out = conv2.output_shape(conv1.output_shape(input_shape))
        flat = int(np.prod(conv2_out))
        self.model = Sequential([
            conv1,
            ReLU("ReLU1"),
            conv2,
            ReLU("ReLU2"),
            Flatten("Flatten"),
            Dense("FC3", flat, hidden),
            ReLU("ReLU3"),
            Dense("FC4", hidden, fc4_width),
        ], input_shape)
        self.precision = precision
        self.policy = policy_for(precision)
        if self.policy is not None:
            self.model.set_policy(self.policy)

    @property
    def input_shape(self) -> Shape:
        return self.model.input_shape

    def init_params(self, rng: typing.Optional[np.random.Generator] = None
                    ) -> ParameterSet:
        """Fresh fan-in-uniform parameters (matching the reference A3C)."""
        return self.model.init_params(rng)

    def forward(self, states: np.ndarray, params: ParameterSet
                ) -> typing.Tuple[np.ndarray, np.ndarray]:
        """FW pass; returns (logits ``(N, A)``, values ``(N,)``)."""
        out = self.model.forward(states, params)
        logits = out[:, :self.num_actions]
        values = out[:, self.num_actions]
        return logits, values

    def backward_and_grads(self, dlogits: np.ndarray, dvalues: np.ndarray,
                           params: ParameterSet) -> ParameterSet:
        """BW + GC from the head gradients; returns parameter gradients.

        ``dlogits`` is ``(N, A)``, ``dvalues`` is ``(N,)``.  The padded FC4
        outputs receive zero gradient.
        """
        n = dlogits.shape[0]
        dy = np.zeros((n, self.fc4_width), dtype=np.float32)
        dy[:, :self.num_actions] = dlogits
        dy[:, self.num_actions] = dvalues
        _, grads = self.model.backward_and_grads(dy, params)
        return grads

    def topology(self) -> NetworkTopology:
        """Table 1 description for the hardware models."""
        return self.model.topology()


class MLPPolicyNetwork:
    """A small dense policy/value network for non-pixel environments.

    Same interface as :class:`A3CNetwork` (forward -> (logits, values),
    backward_and_grads, init_params, topology) but with a
    flatten-dense-ReLU trunk, so the A3C core can be exercised quickly on
    the classic-control environments in tests and the quickstart example.
    """

    def __init__(self, num_actions: int, input_shape: Shape,
                 hidden: int = 64, precision: str = "fp32"):
        self.num_actions = num_actions
        features = int(np.prod(input_shape))
        self.model = Sequential([
            Flatten("Flatten"),
            Dense("FC1", features, hidden),
            ReLU("ReLU1"),
            Dense("FC2", hidden, num_actions + 1),
        ], input_shape)
        self.precision = precision
        self.policy = policy_for(precision)
        if self.policy is not None:
            self.model.set_policy(self.policy)

    @property
    def input_shape(self) -> Shape:
        return self.model.input_shape

    def init_params(self, rng: typing.Optional[np.random.Generator] = None
                    ) -> ParameterSet:
        return self.model.init_params(rng)

    def forward(self, states: np.ndarray, params: ParameterSet
                ) -> typing.Tuple[np.ndarray, np.ndarray]:
        out = self.model.forward(states, params)
        return out[:, :self.num_actions], out[:, self.num_actions]

    def backward_and_grads(self, dlogits: np.ndarray, dvalues: np.ndarray,
                           params: ParameterSet) -> ParameterSet:
        n = dlogits.shape[0]
        dy = np.zeros((n, self.num_actions + 1), dtype=np.float32)
        dy[:, :self.num_actions] = dlogits
        dy[:, self.num_actions] = dvalues
        _, grads = self.model.backward_and_grads(dy, params)
        return grads

    def topology(self) -> NetworkTopology:
        return self.model.topology()
