"""Weight initialisation schemes.

``torch_dqn_init`` replicates the fan-in uniform initialisation used by the
open-source A3C implementation the paper benchmarks against
(miyosuda/async_deep_reinforce, which mirrors the original Torch DQN code):
``U(-d, d)`` with ``d = 1/sqrt(fan_in)``.
"""

from __future__ import annotations

import typing

import numpy as np


def zeros(shape: typing.Sequence[int],
          rng: typing.Optional[np.random.Generator] = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del rng
    return np.zeros(shape, dtype=np.float32)


def _fan_in(shape: typing.Sequence[int]) -> int:
    if len(shape) == 4:  # (O, I, K, K) convolution
        return int(shape[1] * shape[2] * shape[3])
    if len(shape) == 2:  # (out, in) dense
        return int(shape[1])
    if len(shape) == 1:  # bias: use its width
        return int(shape[0])
    raise ValueError(f"cannot infer fan-in for shape {tuple(shape)}")


def torch_dqn_init(shape: typing.Sequence[int],
                   rng: typing.Optional[np.random.Generator] = None
                   ) -> np.ndarray:
    """Fan-in uniform: ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``."""
    rng = rng or np.random.default_rng()
    bound = 1.0 / np.sqrt(_fan_in(shape))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def he_uniform(shape: typing.Sequence[int],
               rng: typing.Optional[np.random.Generator] = None
               ) -> np.ndarray:
    """He (Kaiming) uniform initialisation for ReLU networks."""
    rng = rng or np.random.default_rng()
    bound = np.sqrt(6.0 / _fan_in(shape))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
