"""Layer objects with explicit FW / BW / GC stages.

Layers are *stateless with respect to parameters*: every call takes a
:class:`~repro.nn.parameters.ParameterSet`, so an A3C agent can run the same
network object against its local θ for inference and compute gradients
against the same local θ during training, exactly as the paper's dataflow
does.  Layers do cache forward activations (feature maps), mirroring FA3C's
decision to store forward feature maps in DRAM for reuse by the training
task instead of recomputing them (Section 4.3).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.nn import functional as F
from repro.nn.initializers import torch_dqn_init, zeros
from repro.nn.parameters import ParameterSet

Shape = typing.Tuple[int, ...]


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str):
        self.name = name
        #: Optional :class:`~repro.nn.quant.PrecisionPolicy`; ``None``
        #: (the fp32 reference path) adds no calls at all.
        self.policy = None

    def param_shapes(self) -> typing.Dict[str, Shape]:
        """Mapping of parameter name -> shape; empty for stateless layers."""
        return {}

    def init_params(self, params: ParameterSet,
                    rng: typing.Optional[np.random.Generator] = None,
                    weight_init=torch_dqn_init, bias_init=zeros) -> None:
        """Write freshly initialised parameters into ``params``."""
        for suffix, shape in self.param_shapes().items():
            init = bias_init if suffix == "bias" else weight_init
            params[f"{self.name}.{suffix}"] = init(shape, rng)

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of the output feature map for a given input shape."""
        raise NotImplementedError

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        """FW stage; caches whatever BW/GC later need."""
        raise NotImplementedError

    def backward_input(self, dy: np.ndarray,
                       params: ParameterSet) -> np.ndarray:
        """BW stage: gradient of the layer input."""
        raise NotImplementedError

    def grad_params(self, dy: np.ndarray, grads: ParameterSet) -> None:
        """GC stage: accumulate parameter gradients into ``grads``."""
        for suffix, shape in self.param_shapes().items():
            key = f"{self.name}.{suffix}"
            if key not in grads:
                grads[key] = np.zeros(shape, dtype=np.float32)

    def num_params(self) -> int:
        """Total scalar parameter count of this layer."""
        return sum(int(np.prod(s)) for s in self.param_shapes().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Conv2D(Layer):
    """VALID 2-D convolution with stride, as used by the A3C/DQN trunk."""

    def __init__(self, name: str, in_channels: int, out_channels: int,
                 kernel: int, stride: int):
        super().__init__(name)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self._cols: typing.Optional[np.ndarray] = None
        self._input_shape: typing.Optional[Shape] = None

    def param_shapes(self) -> typing.Dict[str, Shape]:
        return {
            "weight": (self.out_channels, self.in_channels,
                       self.kernel, self.kernel),
            "bias": (self.out_channels,),
        }

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} "
                             f"input channels, got {c}")
        oh = F.conv_output_size(h, self.kernel, self.stride)
        ow = F.conv_output_size(w, self.kernel, self.stride)
        return (self.out_channels, oh, ow)

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float32)
        if self.policy is not None:
            x = self.policy(x, f"{self.name}.act")
        self._input_shape = x.shape
        y, cols = F.conv_forward(x, params[f"{self.name}.weight"],
                                 params[f"{self.name}.bias"], self.stride,
                                 policy=self.policy, key=self.name)
        self._cols = cols
        return y

    def backward_input(self, dy: np.ndarray,
                       params: ParameterSet) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return F.conv_backward_input(dy, params[f"{self.name}.weight"],
                                     self.stride, self._input_shape,
                                     policy=self.policy, key=self.name)

    def grad_params(self, dy: np.ndarray, grads: ParameterSet) -> None:
        if self._cols is None:
            raise RuntimeError(f"{self.name}: grad before forward")
        super().grad_params(dy, grads)
        weight_shape = self.param_shapes()["weight"]
        dw, db = F.conv_grad_params(self._cols, dy, weight_shape)
        grads[f"{self.name}.weight"] += dw
        grads[f"{self.name}.bias"] += db


class Dense(Layer):
    """Fully-connected layer; input ``(N, in_features)``."""

    def __init__(self, name: str, in_features: int, out_features: int):
        super().__init__(name)
        self.in_features = in_features
        self.out_features = out_features
        self._x: typing.Optional[np.ndarray] = None

    def param_shapes(self) -> typing.Dict[str, Shape]:
        return {
            "weight": (self.out_features, self.in_features),
            "bias": (self.out_features,),
        }

    def output_shape(self, input_shape: Shape) -> Shape:
        (features,) = input_shape
        if features != self.in_features:
            raise ValueError(f"{self.name}: expected {self.in_features} "
                             f"input features, got {features}")
        return (self.out_features,)

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float32)
        if self.policy is not None:
            x = self.policy(x, f"{self.name}.act")
        self._x = x
        return F.dense_forward(x, params[f"{self.name}.weight"],
                               params[f"{self.name}.bias"],
                               policy=self.policy, key=self.name)

    def backward_input(self, dy: np.ndarray,
                       params: ParameterSet) -> np.ndarray:
        return F.dense_backward_input(dy, params[f"{self.name}.weight"],
                                      policy=self.policy, key=self.name)

    def grad_params(self, dy: np.ndarray, grads: ParameterSet) -> None:
        if self._x is None:
            raise RuntimeError(f"{self.name}: grad before forward")
        super().grad_params(dy, grads)
        dw, db = F.dense_grad_params(self._x, dy)
        grads[f"{self.name}.weight"] += dw
        grads[f"{self.name}.bias"] += db


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str):
        super().__init__(name)
        self._x: typing.Optional[np.ndarray] = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        del params
        self._x = x
        return F.relu_forward(x)

    def backward_input(self, dy: np.ndarray,
                       params: ParameterSet) -> np.ndarray:
        del params
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return F.relu_backward(dy, self._x)

    def grad_params(self, dy: np.ndarray, grads: ParameterSet) -> None:
        del dy, grads  # no parameters


class Flatten(Layer):
    """Reshape ``(N, C, H, W)`` to ``(N, C*H*W)``."""

    def __init__(self, name: str):
        super().__init__(name)
        self._input_shape: typing.Optional[Shape] = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, params: ParameterSet) -> np.ndarray:
        del params
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward_input(self, dy: np.ndarray,
                       params: ParameterSet) -> np.ndarray:
        del params
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return dy.reshape(self._input_shape)

    def grad_params(self, dy: np.ndarray, grads: ParameterSet) -> None:
        del dy, grads  # no parameters
