"""Stateless numerical primitives: convolution, dense, and activations.

All convolution routines are built on an ``im2col`` transformation so that
the heavy lifting is a single matrix multiplication — the same operational
structure the FA3C processing elements execute (multiply + accumulate over
the I*K*K reduction axis, paper Section 4.2.1).

Array conventions:

* feature maps: ``(N, C, H, W)`` float32
* convolution weights: ``(O, I, K, K)`` float32, bias ``(O,)``
* dense weights: ``(out_features, in_features)``, bias ``(out_features,)``
"""

from __future__ import annotations

import typing

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int) -> int:
    """Spatial output size of a VALID convolution."""
    if size < kernel:
        raise ValueError(f"input size {size} smaller than kernel {kernel}")
    return (size - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int,
           stride: int) -> typing.Tuple[np.ndarray, typing.Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into columns ``(N, C*K*K, OH*OW)``.

    Returns the column matrix and the output spatial shape ``(OH, OW)``.
    Uses a strided view plus one reshape-copy; no Python loops.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride)
    ow = conv_output_size(w, kernel, stride)
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = view.reshape(n, c * kernel * kernel, oh * ow)
    return cols, (oh, ow)


def col2im(cols: np.ndarray, input_shape: typing.Tuple[int, int, int, int],
           kernel: int, stride: int) -> np.ndarray:
    """Fold columns ``(N, C*K*K, OH*OW)`` back to ``(N, C, H, W)``.

    Overlapping positions accumulate — this is the adjoint of
    :func:`im2col` and the core of backward propagation through a
    convolution.
    """
    n, c, h, w = input_shape
    oh = conv_output_size(h, kernel, stride)
    ow = conv_output_size(w, kernel, stride)
    cols = cols.reshape(n, c, kernel, kernel, oh, ow)
    out = np.zeros(input_shape, dtype=cols.dtype)
    for ki in range(kernel):
        row_end = ki + stride * oh
        for kj in range(kernel):
            col_end = kj + stride * ow
            out[:, :, ki:row_end:stride, kj:col_end:stride] += \
                cols[:, :, ki, kj, :, :]
    return out


def conv_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                 stride: int, policy=None, key: str = ""
                 ) -> typing.Tuple[np.ndarray, np.ndarray]:
    """FW stage of a convolution layer.

    Returns ``(y, cols)`` where ``cols`` is the im2col matrix cached for the
    GC stage (FA3C likewise saves forward feature maps in DRAM for reuse by
    the training task, Section 4.3).

    ``policy`` is an optional :class:`~repro.nn.quant.PrecisionPolicy`
    coercing the *parameters* to their storage precision (activations are
    coerced by the layer, which owns the forward cache); at fp32 the
    policy is ``None`` and no extra call happens.
    """
    o, i, k, _ = weight.shape
    if x.shape[1] != i:
        raise ValueError(f"input channels {x.shape[1]} != weight {i}")
    if policy is not None:
        weight = policy(weight, f"{key}.weight")
        bias = policy(bias, f"{key}.bias")
    cols, (oh, ow) = im2col(x, k, stride)
    flat_w = weight.reshape(o, i * k * k)
    y = np.einsum("ok,nkp->nop", flat_w, cols, optimize=True)
    y += bias[None, :, None]
    return y.reshape(x.shape[0], o, oh, ow), cols


def conv_backward_input(dy: np.ndarray, weight: np.ndarray, stride: int,
                        input_shape: typing.Tuple[int, int, int, int],
                        policy=None, key: str = "") -> np.ndarray:
    """BW stage: gradients of the input feature map.

    ``dy`` has shape ``(N, O, OH, OW)``.  ``policy`` re-coerces the
    weight to the same stored values the FW stage multiplied by
    (straight-through estimation: gradients flow in fp32 through the
    quantized parameters).
    """
    n, o, oh, ow = dy.shape
    _, i, k, _ = weight.shape
    if policy is not None:
        weight = policy(weight, f"{key}.weight")
    flat_w = weight.reshape(o, i * k * k)
    dy_flat = dy.reshape(n, o, oh * ow)
    dcols = np.einsum("ok,nop->nkp", flat_w, dy_flat, optimize=True)
    return col2im(dcols, input_shape, k, stride)


def conv_grad_params(cols: np.ndarray, dy: np.ndarray, weight_shape:
                     typing.Tuple[int, int, int, int]
                     ) -> typing.Tuple[np.ndarray, np.ndarray]:
    """GC stage: gradients of the convolution weights and bias.

    ``cols`` is the cached im2col matrix from the FW stage.
    """
    o, i, k, _ = weight_shape
    n = dy.shape[0]
    dy_flat = dy.reshape(n, o, -1)
    dw = np.einsum("nop,nkp->ok", dy_flat, cols, optimize=True)
    db = dy_flat.sum(axis=(0, 2))
    return dw.reshape(weight_shape), db


def dense_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                  policy=None, key: str = "") -> np.ndarray:
    """FW stage of a fully-connected layer; ``x`` is ``(N, in_features)``.

    ``policy`` optionally coerces the parameters to storage precision.
    """
    if policy is not None:
        weight = policy(weight, f"{key}.weight")
        bias = policy(bias, f"{key}.bias")
    return x @ weight.T + bias


def dense_backward_input(dy: np.ndarray, weight: np.ndarray,
                         policy=None, key: str = "") -> np.ndarray:
    """BW stage of a fully-connected layer (straight-through weights)."""
    if policy is not None:
        weight = policy(weight, f"{key}.weight")
    return dy @ weight


def dense_grad_params(x: np.ndarray, dy: np.ndarray
                      ) -> typing.Tuple[np.ndarray, np.ndarray]:
    """GC stage of a fully-connected layer.

    The reduction axis is the batch — the paper's point that the
    accumulation frequency of GC equals the batch size (Section 4.2.1).
    """
    return dy.T @ x, dy.sum(axis=0)


def relu_forward(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_backward(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Pass gradients only where the forward input was positive."""
    return dy * (x > 0)
