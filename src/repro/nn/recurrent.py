"""Recurrent layers: an LSTM cell with backpropagation through time.

The original A3C publication evaluates a recurrent variant in which the
first fully-connected layer is followed by (or replaced with) an LSTM of
256 cells; FA3C's generic PEs serve it with yet another accumulation
frequency — the motivating flexibility of paper Section 4.2.1.  This
module provides the cell mathematics; :class:`LSTMA3CNetwork` in
:mod:`repro.nn.network_lstm` assembles the full recurrent agent network.

Gate layout in the packed weight matrix (rows ``4H x (I + H)``):
input gate ``i``, forget gate ``f``, candidate ``g``, output gate ``o``.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.nn.initializers import torch_dqn_init, zeros
from repro.nn.parameters import ParameterSet


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


@dataclasses.dataclass
class LSTMState:
    """The recurrent carry: hidden and cell activations ``(N, H)``."""

    h: np.ndarray
    c: np.ndarray

    def copy(self) -> "LSTMState":
        return LSTMState(self.h.copy(), self.c.copy())

    def reset(self) -> None:
        """Zero the carry (episode boundary)."""
        self.h[:] = 0.0
        self.c[:] = 0.0


@dataclasses.dataclass
class _StepCache:
    """Forward intermediates one step of BPTT needs."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMCell:
    """A standard LSTM cell operating one timestep at a time."""

    def __init__(self, name: str, input_size: int, hidden_size: int):
        self.name = name
        self.input_size = input_size
        self.hidden_size = hidden_size

    def param_shapes(self) -> typing.Dict[str, typing.Tuple[int, ...]]:
        h, i = self.hidden_size, self.input_size
        return {"weight": (4 * h, i + h), "bias": (4 * h,)}

    def init_params(self, params: ParameterSet,
                    rng: typing.Optional[np.random.Generator] = None,
                    weight_init=torch_dqn_init, bias_init=zeros) -> None:
        """Fan-in uniform weights; forget-gate bias initialised to 1 so
        early training retains memory (standard practice)."""
        shapes = self.param_shapes()
        params[f"{self.name}.weight"] = weight_init(shapes["weight"], rng)
        bias = bias_init(shapes["bias"], rng)
        h = self.hidden_size
        bias[h:2 * h] = 1.0
        params[f"{self.name}.bias"] = bias

    def num_params(self) -> int:
        return sum(int(np.prod(s)) for s in self.param_shapes().values())

    def zero_state(self, batch: int) -> LSTMState:
        """A fresh all-zero carry."""
        h = np.zeros((batch, self.hidden_size), dtype=np.float32)
        return LSTMState(h=h, c=h.copy())

    def step(self, x: np.ndarray, state: LSTMState,
             params: ParameterSet
             ) -> typing.Tuple[np.ndarray, LSTMState, _StepCache]:
        """One forward timestep: returns (h', new state, cache)."""
        weight = params[f"{self.name}.weight"]
        bias = params[f"{self.name}.bias"]
        h_size = self.hidden_size
        xh = np.concatenate([x, state.h], axis=1)
        gates = xh @ weight.T + bias
        i = sigmoid(gates[:, :h_size])
        f = sigmoid(gates[:, h_size:2 * h_size])
        g = np.tanh(gates[:, 2 * h_size:3 * h_size])
        o = sigmoid(gates[:, 3 * h_size:])
        c = f * state.c + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = _StepCache(x=x, h_prev=state.h, c_prev=state.c, i=i, f=f,
                           g=g, o=o, c=c, tanh_c=tanh_c)
        return h, LSTMState(h=h, c=c), cache

    def forward_sequence(self, xs: np.ndarray, state: LSTMState,
                         params: ParameterSet
                         ) -> typing.Tuple[np.ndarray, LSTMState,
                                           typing.List[_StepCache]]:
        """Run ``T`` steps; ``xs`` is ``(T, N, input_size)``.

        Returns the stacked hidden outputs ``(T, N, H)``, the final
        state, and the per-step caches for BPTT.
        """
        outputs = []
        caches = []
        for t in range(xs.shape[0]):
            h, state, cache = self.step(xs[t], state, params)
            outputs.append(h)
            caches.append(cache)
        return np.stack(outputs), state, caches

    def backward_sequence(self, dhs: np.ndarray,
                          caches: typing.Sequence[_StepCache],
                          params: ParameterSet, grads: ParameterSet
                          ) -> np.ndarray:
        """BPTT: gradients of the per-step inputs from per-step dL/dh.

        ``dhs`` is ``(T, N, H)``.  Parameter gradients accumulate into
        ``grads``; the gradient flowing past the initial state is
        discarded (A3C truncates BPTT at the rollout boundary).
        """
        weight = params[f"{self.name}.weight"]
        h_size = self.hidden_size
        for suffix, shape in self.param_shapes().items():
            key = f"{self.name}.{suffix}"
            if key not in grads:
                grads[key] = np.zeros(shape, dtype=np.float32)
        dw = grads[f"{self.name}.weight"]
        db = grads[f"{self.name}.bias"]

        batch = dhs.shape[1]
        dxs = np.zeros((len(caches), batch, self.input_size),
                       dtype=np.float32)
        dh_next = np.zeros((batch, h_size), dtype=np.float32)
        dc_next = np.zeros((batch, h_size), dtype=np.float32)
        for t in range(len(caches) - 1, -1, -1):
            cache = caches[t]
            dh = dhs[t] + dh_next
            do = dh * cache.tanh_c
            dc = dh * cache.o * (1.0 - cache.tanh_c ** 2) + dc_next
            di = dc * cache.g
            dg = dc * cache.i
            df = dc * cache.c_prev
            dc_next = dc * cache.f
            # Through the gate nonlinearities.
            dgates = np.concatenate([
                di * cache.i * (1.0 - cache.i),
                df * cache.f * (1.0 - cache.f),
                dg * (1.0 - cache.g ** 2),
                do * cache.o * (1.0 - cache.o),
            ], axis=1)
            xh = np.concatenate([cache.x, cache.h_prev], axis=1)
            dw += dgates.T @ xh
            db += dgates.sum(axis=0)
            dxh = dgates @ weight
            dxs[t] = dxh[:, :self.input_size]
            dh_next = dxh[:, self.input_size:]
        return dxs
