"""Named parameter collections.

A :class:`ParameterSet` is an ordered mapping from parameter names (e.g.
``"conv1.weight"``) to float32 arrays.  A3C keeps one *global* set and a
per-agent *local* snapshot (paper Figure 2); parameter sync is
:meth:`copy_from`, and gradient application happens against the global set.
"""

from __future__ import annotations

import typing

import numpy as np


class ParameterSet:
    """An ordered, named collection of float32 parameter arrays."""

    def __init__(self, arrays: typing.Optional[
            typing.Mapping[str, np.ndarray]] = None):
        self._arrays: "dict[str, np.ndarray]" = {}
        if arrays:
            for name, value in arrays.items():
                self[name] = value

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        self._arrays[name] = np.asarray(value, dtype=np.float32)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> typing.Iterator[str]:
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def names(self) -> typing.List[str]:
        """Parameter names in insertion (layer) order."""
        return list(self._arrays)

    def items(self) -> typing.ItemsView[str, np.ndarray]:
        return self._arrays.items()

    def num_values(self) -> int:
        """Total number of scalar parameters."""
        return sum(int(a.size) for a in self._arrays.values())

    def num_bytes(self) -> int:
        """Total parameter storage in bytes (fp32)."""
        return sum(int(a.nbytes) for a in self._arrays.values())

    def copy(self) -> "ParameterSet":
        """A deep copy (used to snapshot global θ into local θ)."""
        return ParameterSet({k: v.copy() for k, v in self._arrays.items()})

    def copy_from(self, other: "ParameterSet") -> None:
        """In-place copy of every array from ``other`` (parameter sync).

        Allocation-free: runs once per agent routine, so the name check
        compares dict key views (set semantics without building sets) and
        the copies reuse the destination arrays.
        """
        if other._arrays.keys() != self._arrays.keys():
            raise ValueError("parameter sets have different names")
        arrays = self._arrays
        for name, value in other._arrays.items():
            np.copyto(arrays[name], value)

    def zeros_like(self) -> "ParameterSet":
        """A same-shaped set of zeros (gradient or RMSProp-g storage)."""
        return ParameterSet({k: np.zeros_like(v)
                             for k, v in self._arrays.items()})

    def add_scaled(self, other: "ParameterSet", scale: float) -> None:
        """``self += scale * other`` (gradient accumulation)."""
        for name, value in other.items():
            self._arrays[name] += scale * value

    def flatten(self) -> np.ndarray:
        """Concatenate all arrays into one 1-D vector (layer order)."""
        if not self._arrays:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate([a.ravel() for a in self._arrays.values()])

    def load_flat(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`flatten` — scatter a vector into the arrays."""
        if flat.size != self.num_values():
            raise ValueError(f"flat vector has {flat.size} values, "
                             f"expected {self.num_values()}")
        offset = 0
        for array in self._arrays.values():
            count = array.size
            np.copyto(array, flat[offset:offset + count].reshape(array.shape))
            offset += count

    def allclose(self, other: "ParameterSet", rtol: float = 1e-5,
                 atol: float = 1e-7) -> bool:
        """True if every array matches ``other`` within tolerance."""
        if set(other.names()) != set(self.names()):
            return False
        return all(np.allclose(v, other[k], rtol=rtol, atol=atol)
                   for k, v in self._arrays.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shapes = {k: v.shape for k, v in self._arrays.items()}
        return f"ParameterSet({shapes})"
