"""The recurrent (LSTM) A3C network variant.

The original A3C publication additionally evaluates an agent with 256
LSTM cells after the final hidden layer; FA3C's generic-PE design argument
(Section 4.2.1) explicitly covers such extra layer types, since the LSTM's
matrix-vector products are yet another accumulation frequency on the same
PEs.  :class:`RecurrentPolicyNetwork` composes any feed-forward trunk with
an LSTM and the padded policy/value head; :func:`lstm_a3c_network` builds
the Table 1 trunk variant.

Training uses truncated backpropagation through time over one rollout
(t_max steps), with the carry saved at the rollout boundary — exactly the
original A3C-LSTM procedure.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, ReLU
from repro.nn.network import Sequential, Shape
from repro.nn.parameters import ParameterSet
from repro.nn.recurrent import LSTMCell, LSTMState


class RecurrentPolicyNetwork:
    """trunk -> LSTM -> padded policy/value head."""

    def __init__(self, trunk: Sequential, num_actions: int,
                 lstm_hidden: int = 256,
                 head_width: typing.Optional[int] = None):
        (trunk_out,) = trunk.output_shape
        self.trunk = trunk
        self.num_actions = num_actions
        self.lstm = LSTMCell("LSTM", trunk_out, lstm_hidden)
        self.head_width = head_width or max(num_actions + 1, 32)
        if num_actions + 1 > self.head_width:
            raise ValueError("head too narrow for actions + value")
        self.head = Dense("FC4", lstm_hidden, self.head_width)
        self._caches: typing.Optional[list] = None

    @property
    def input_shape(self) -> Shape:
        return self.trunk.input_shape

    def init_params(self, rng: typing.Optional[np.random.Generator] = None
                    ) -> ParameterSet:
        params = self.trunk.init_params(rng)
        self.lstm.init_params(params, rng)
        self.head.init_params(params, rng)
        return params

    def initial_state(self) -> LSTMState:
        """A zero carry for one agent (batch 1)."""
        return self.lstm.zero_state(1)

    def _split_head(self, out: np.ndarray
                    ) -> typing.Tuple[np.ndarray, np.ndarray]:
        return out[:, :self.num_actions], out[:, self.num_actions]

    def forward_step(self, state: np.ndarray, params: ParameterSet,
                     carry: LSTMState
                     ) -> typing.Tuple[np.ndarray, np.ndarray, LSTMState]:
        """One inference step: (logits ``(1, A)``, value ``(1,)``, new
        carry)."""
        features = self.trunk.forward(state.astype(np.float32), params)
        h, carry, _ = self.lstm.step(features, carry, params)
        logits, values = self._split_head(self.head.forward(h, params))
        return logits, values, carry

    def forward_rollout(self, states: np.ndarray, params: ParameterSet,
                        carry: LSTMState
                        ) -> typing.Tuple[np.ndarray, np.ndarray,
                                          LSTMState]:
        """FW over a whole rollout ``(T, ...)`` for training.

        The trunk runs as one batch (it is feed-forward); the LSTM runs
        the T steps sequentially from the rollout's saved carry.  Caches
        are kept for :meth:`backward_and_grads`.
        """
        features = self.trunk.forward(states.astype(np.float32), params)
        xs = features[:, None, :]                    # (T, N=1, F)
        hs, carry, caches = self.lstm.forward_sequence(xs, carry.copy(),
                                                       params)
        self._caches = caches
        out = self.head.forward(hs[:, 0, :], params)
        logits, values = self._split_head(out)
        return logits, values, carry

    def backward_and_grads(self, dlogits: np.ndarray,
                           dvalues: np.ndarray,
                           params: ParameterSet) -> ParameterSet:
        """Truncated BPTT over the cached rollout."""
        if self._caches is None:
            raise RuntimeError("backward before forward_rollout")
        t_steps = dlogits.shape[0]
        dy = np.zeros((t_steps, self.head_width), dtype=np.float32)
        dy[:, :self.num_actions] = dlogits
        dy[:, self.num_actions] = dvalues
        grads = ParameterSet()
        self.head.grad_params(dy, grads)
        dh = self.head.backward_input(dy, params)
        dxs = self.lstm.backward_sequence(dh[:, None, :], self._caches,
                                          params, grads)
        _, trunk_grads = self.trunk.backward_and_grads(
            dxs[:, 0, :], params)
        for name, value in trunk_grads.items():
            grads[name] = value
        return grads

    def num_params(self) -> int:
        total = sum(layer.num_params() for layer in self.trunk.layers)
        return total + self.lstm.num_params() + self.head.num_params()

    def topology(self):
        """Hardware-facing description for the FPGA/GPU cost models.

        The LSTM step is, from the datapath's point of view, one dense
        layer of shape ``4H x (I + H)`` (the gate nonlinearities ride in
        the PE output path like ReLU does), so it appears as a dense
        :class:`~repro.nn.network.LayerSpec` — exactly the "yet another
        accumulation frequency on the same PEs" argument of paper
        Section 4.2.1.
        """
        from repro.nn.network import LayerSpec, NetworkTopology
        trunk_topology = self.trunk.topology()
        lstm_spec = LayerSpec(
            name="LSTM", kind="dense",
            in_channels=self.lstm.input_size + self.lstm.hidden_size,
            out_channels=4 * self.lstm.hidden_size,
            kernel=1, stride=1, in_height=1, in_width=1,
            out_height=1, out_width=1)
        head_spec = LayerSpec(
            name="FC4", kind="dense",
            in_channels=self.lstm.hidden_size,
            out_channels=self.head_width,
            kernel=1, stride=1, in_height=1, in_width=1,
            out_height=1, out_width=1)
        return NetworkTopology(
            input_shape=trunk_topology.input_shape,
            layers=trunk_topology.layers + (lstm_spec, head_spec))


def lstm_a3c_network(num_actions: int,
                     input_shape: Shape = (4, 84, 84),
                     lstm_hidden: int = 256) -> RecurrentPolicyNetwork:
    """The A3C-LSTM agent: Table 1 conv trunk + FC3 + 256 LSTM cells."""
    conv1 = Conv2D("Conv1", input_shape[0], 16, kernel=8, stride=4)
    conv2 = Conv2D("Conv2", 16, 32, kernel=4, stride=2)
    conv2_out = conv2.output_shape(conv1.output_shape(input_shape))
    flat = int(np.prod(conv2_out))
    trunk = Sequential([
        conv1, ReLU("ReLU1"), conv2, ReLU("ReLU2"), Flatten("Flatten"),
        Dense("FC3", flat, 256), ReLU("ReLU3"),
    ], input_shape)
    return RecurrentPolicyNetwork(trunk, num_actions,
                                  lstm_hidden=lstm_hidden)


def mlp_lstm_network(num_actions: int, input_shape: Shape,
                     hidden: int = 32,
                     lstm_hidden: int = 32) -> RecurrentPolicyNetwork:
    """A small dense-trunk recurrent network for tests and examples."""
    features = int(np.prod(input_shape))
    trunk = Sequential([
        Flatten("Flatten"),
        Dense("FC1", features, hidden),
        ReLU("ReLU1"),
    ], input_shape)
    return RecurrentPolicyNetwork(trunk, num_actions,
                                  lstm_hidden=lstm_hidden,
                                  head_width=num_actions + 1)
