"""The repo-wide precision vocabulary.

FA3C's datapath is single-precision throughout (paper Section 4.2.1),
but quantized FPGA RL engines trade operand width for PE density,
DRAM beats, and energy (QForce-RL; the Guo et al. accelerator survey
names quantization as the standard PE-density lever).  This module is
the single place the stack spells out what an operand width *means*:

* ``repro.nn`` derives its quantize/dequantize emulation policy from a
  :class:`Precision` (see :mod:`repro.nn.quant`);
* ``repro.fpga`` derives words-per-DRAM-beat, PE density, TLU patch
  edge, and buffer capacity from it;
* ``repro.backends`` declares it as a per-backend capability, validated
  at registry-create time.

The three members are deliberately a closed set: the 512-bit DDR4 beat
and the DSP budget divide evenly by 32/16/8-bit operands, which is what
keeps the fp32 arithmetic bit-identical (every scaling factor is exactly
1 at fp32).
"""

from __future__ import annotations

import dataclasses
import difflib
import typing

#: Bits per DDR4 burst beat (the 512-bit interface of Section 4.3).
BEAT_BITS = 512


@dataclasses.dataclass(frozen=True)
class Precision:
    """One operand width and its datapath consequences.

    ``storage_bits`` is the width operands occupy in DRAM, on-chip
    buffers, and the DMA stream; ``accumulate_bits`` is the accumulator
    width (FA3C-style MACs keep a wide accumulator even for narrow
    operands, so quantized backends accumulate in fp32).
    """

    name: str
    storage_bits: int
    accumulate_bits: int = 32
    is_float: bool = True

    def __post_init__(self):
        if BEAT_BITS % self.storage_bits:
            raise ValueError(f"storage width {self.storage_bits} does not "
                             f"divide the {BEAT_BITS}-bit DRAM beat")

    @property
    def storage_bytes(self) -> int:
        """Bytes one operand occupies in DRAM."""
        return self.storage_bits // 8

    @property
    def words_per_beat(self) -> int:
        """Operands moved per 512-bit DRAM beat (16/32/64)."""
        return BEAT_BITS // self.storage_bits

    @property
    def pe_scale(self) -> int:
        """PE density multiplier at a fixed DSP/logic budget.

        A DSP slice that hosts one fp32 MAC hosts two fp16 or four int8
        MACs (the survey's Table-of-levers observation), so narrower
        operands multiply the PE count the same budget yields.
        """
        return 32 // self.storage_bits

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


FP32 = Precision("fp32", storage_bits=32)
FP16 = Precision("fp16", storage_bits=16)
INT8 = Precision("int8", storage_bits=8, is_float=False)

#: The closed set of supported precisions, by name.
PRECISIONS: typing.Dict[str, Precision] = {
    FP32.name: FP32,
    FP16.name: FP16,
    INT8.name: INT8,
}


def resolve_precision(precision: typing.Union[str, Precision]) -> Precision:
    """A :class:`Precision` from a name or an instance.

    Unknown names raise a ``ValueError`` that names the nearest valid
    precision (same style as the linter's unknown-rule pragma warning).
    """
    if isinstance(precision, Precision):
        return precision
    try:
        return PRECISIONS[precision]
    except KeyError:
        hint = ""
        matches = difflib.get_close_matches(str(precision),
                                            sorted(PRECISIONS), n=1)
        if matches:
            hint = f" (did you mean {matches[0]!r}?)"
        raise ValueError(
            f"unknown precision {precision!r}; supported: "
            f"{', '.join(sorted(PRECISIONS))}{hint}") from None
