"""Named backend registry.

Backends register a *factory* under a stable name (``fa3c-fpga``,
``a3c-cudnn``, ...); :func:`create` builds a fresh backend instance from
a name, a network topology, and optional platform config overrides.
The CLI's ``--platform`` flag, the harness experiment table, and the
bench scenario matrix all resolve platforms through here, so adding a
backend is one ``register`` call — no trainer or CLI edits.
"""

from __future__ import annotations

import dataclasses
import difflib
import typing

from repro.backends.protocol import Backend, BackendCapabilities
from repro.precision import resolve_precision

#: ``factory(topology, **overrides) -> Backend``.  ``topology`` may be
#: ``None``, in which case the factory builds the paper's default A3C
#: topology (six actions).
BackendFactory = typing.Callable[..., Backend]

_REGISTRY: typing.Dict[str, BackendFactory] = {}

#: The platform used when none is requested.
DEFAULT_BACKEND = "fa3c-fpga"


def register(name: str, factory: BackendFactory,
             replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Re-registration is an error unless ``replace=True`` — shadowing a
    platform silently would invalidate committed bench baselines.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered; "
                         f"pass replace=True to override")
    _REGISTRY[name] = factory


def names() -> typing.Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def create(name: str, topology=None, **overrides) -> Backend:
    """Build a fresh backend instance for ``name``.

    ``topology`` defaults to the paper's A3C network (six actions);
    ``overrides`` pass through to the platform configuration (e.g.
    ``cu_pairs=1`` for the Figure 10 single-pair ablations).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {name!r}; registered: "
                         f"{known}") from None
    backend = factory(topology, **overrides)
    _validate_capabilities(name, backend)
    return backend


def _validate_capabilities(name: str, backend: Backend) -> None:
    """Reject a backend whose declared precision the repo cannot model.

    Runs on every :func:`create` so a factory declaring e.g. ``"int4"``
    fails at registry-create time with the capability named, instead of
    surfacing later as a timing-model KeyError.
    """
    declared = getattr(backend.capabilities, "precision", "fp32")
    try:
        resolve_precision(declared)
    except ValueError as error:
        raise ValueError(f"backend {name!r} declares an unsupported "
                         f"precision capability: {error}") from None


def capability(backend: Backend, capability_name: str):
    """Read one :class:`BackendCapabilities` field by name.

    Unknown capability names raise with the nearest valid field named,
    so a query for ``"precison"`` points at ``"precision"`` instead of
    failing opaquely.
    """
    capabilities = backend.capabilities
    fields = [f.name for f in dataclasses.fields(BackendCapabilities)]
    if capability_name not in fields:
        matches = difflib.get_close_matches(capability_name, fields, n=1)
        hint = f" (did you mean {matches[0]!r}?)" if matches else ""
        raise ValueError(f"unknown capability {capability_name!r}{hint}; "
                         f"valid: {', '.join(fields)}")
    return getattr(capabilities, capability_name)


def resolve(backend: typing.Union[str, Backend, None],
            topology=None) -> Backend:
    """A backend instance from a name, an instance, or ``None``.

    ``None`` resolves to :data:`DEFAULT_BACKEND`; instances pass
    through unchanged (the caller owns their topology).
    """
    if backend is None:
        return create(DEFAULT_BACKEND, topology)
    if isinstance(backend, str):
        return create(backend, topology)
    return backend


def default_topology():
    """The topology factories fall back to: the paper's A3C network."""
    from repro.nn.network import A3CNetwork
    return A3CNetwork(num_actions=6).topology()
