"""The execution-backend protocol.

A *backend* is the uniform handle trainers, the CLI, and the bench
harness hold on one execution platform — the FA3C FPGA model or one of
the four software baselines (paper Section 5.1).  It exposes:

* :class:`BackendCapabilities` — what the platform can do (does it keep
  per-agent local parameters and therefore sync/bootstrap, does it batch
  inference across agents, can its sim record a stage trace);
* stage-plan compilation (:meth:`Backend.compile_plans`) — warms the
  platform's memoized plan/task caches so later measurements replay
  instead of re-deriving;
* analytic, uncontended step latencies (:meth:`Backend.infer_step`,
  :meth:`Backend.train_step`, :meth:`Backend.sync_step`) and their
  cause-bucket attribution (:meth:`Backend.attribution`);
* a discrete-event simulation instance (:meth:`Backend.build_sim`) with
  the same duck-typed surface :mod:`repro.platforms.throughput` drives
  (``inference``/``train``/``sync`` process bodies);
* the deterministic seeding contract (:func:`derive_agent_seed`).

The analytic queries are *side-effect free*: they never record metrics,
even while :mod:`repro.obs` collection is on (the simulated task
executions are what record).  Conformance is asserted for every
registered backend by ``tests/test_backends_conformance.py``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path

if typing.TYPE_CHECKING:                     # pragma: no cover
    from repro.sim import Engine, Tracer

#: Multiplier of the per-agent seed derivation.  Prime and larger than
#: any realistic agent count, so per-agent environment seed streams
#: never collide across base seeds.
AGENT_SEED_STRIDE = 1009


@hot_path
def derive_agent_seed(seed: int, agent_id: int) -> int:
    """The repo-wide deterministic seeding contract.

    Every trainer seeds agent ``agent_id``'s environment with this value
    so runs are reproducible given ``config.seed`` alone, and so the
    same (seed, agent) pair sees the same episode stream on every
    backend and actor execution mode.
    """
    return seed * AGENT_SEED_STRIDE + agent_id


#: Multiplier of the per-episode evaluation seed derivation.  A larger
#: prime than :data:`AGENT_SEED_STRIDE` so evaluation episode streams
#: never alias the training agents' environment streams.
EVAL_SEED_STRIDE = 7919


def derive_policy_seed(seed: int, agent_id: int) -> int:
    """Per-agent *policy sampling* seed: ``seed + agent_id``.

    Agents draw their action-sampling RNG from this stream.  It is
    deliberately distinct from :func:`derive_agent_seed` (which seeds
    the agent's *environment*): the offset form has been the policy
    stream's identity since the first trainer and is kept bit-exact so
    recorded runs and the bench baselines replay unchanged.
    """
    return seed + agent_id


def derive_eval_seed(seed: int, episode: int) -> int:
    """Per-episode *evaluation* seed: ``seed * EVAL_SEED_STRIDE +
    episode``.

    Greedy-evaluation episodes each get their own environment stream so
    scores are independent of evaluation order and batch size.
    """
    return seed * EVAL_SEED_STRIDE + episode


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What one execution platform supports.

    ``needs_sync`` / ``needs_bootstrap`` mirror the per-agent-local-θ
    structure: GA3C keeps a single global model, so agents neither sync
    parameters nor run their own bootstrap inference (the predictor
    batches it).  ``supports_tracing`` marks sims whose ``build_sim``
    accepts a :class:`~repro.sim.Tracer` for per-CU stage Gantt charts.
    ``precision`` is the operand storage format of the datapath (a
    :mod:`repro.precision` name); the registry validates it at create
    time, so an unregistered or misspelt precision fails on ``create``
    rather than deep inside a timing query.
    """

    kind: str                        # "fpga" | "gpu" | "host"
    needs_sync: bool = True
    needs_bootstrap: bool = True
    batched_inference: bool = False  # requests batched across agents
    supports_tracing: bool = False
    precision: str = "fp32"          # repro.precision name


@typing.runtime_checkable
class Backend(typing.Protocol):
    """Structural protocol every registered backend satisfies."""

    registry_name: str
    capabilities: BackendCapabilities

    @property
    def name(self) -> str:
        """Display name used in figures/tables (e.g. ``"A3C-cuDNN"``)."""

    @property
    def needs_sync(self) -> bool: ...

    @property
    def needs_bootstrap(self) -> bool: ...

    def compile_plans(self, t_max: int = 5) -> int: ...

    def infer_step(self, batch: int = 1) -> float: ...

    def train_step(self, batch: int) -> float: ...

    def sync_step(self) -> float: ...

    def attribution(self, task: str, batch: int = 0
                    ) -> typing.Dict[str, float]: ...

    def build_sim(self, engine: "Engine",
                  tracer: typing.Optional["Tracer"] = None): ...

    def agent_seed(self, agent_id: int, seed: int) -> int: ...


class PlatformBackend:
    """Concrete adapter base: a backend wrapping one platform object.

    Subclasses (:class:`~repro.backends.fpga.FPGABackend`,
    :class:`~repro.backends.gpu.GPUBackend`) supply the capability
    flags and the platform-specific plan compilation / latency /
    attribution dispatch; everything surface-level — display name,
    sync/bootstrap flags, seeding — is shared here.

    The adapter deliberately keeps the wrapped platform public
    (``backend.platform``) so analysis code that needs model-specific
    detail (resource tables, calibration constants) can reach it without
    widening the protocol.
    """

    def __init__(self, registry_name: str, platform,
                 capabilities: BackendCapabilities):
        self.registry_name = registry_name
        self.platform = platform
        self.capabilities = capabilities

    @property
    def name(self) -> str:
        # FPGA platforms carry the display name on their config; the
        # GPU baselines as a class attribute.  Same resolution order as
        # ThroughputSetup, so series keys and power tables are stable.
        platform = self.platform
        return getattr(platform, "name", None) or platform.config.name

    @property
    def needs_sync(self) -> bool:
        return self.capabilities.needs_sync

    @property
    def needs_bootstrap(self) -> bool:
        return self.capabilities.needs_bootstrap

    @property
    def topology(self):
        return self.platform.topology

    def agent_seed(self, agent_id: int, seed: int) -> int:
        """Environment seed for ``agent_id`` under base ``seed``."""
        return derive_agent_seed(seed, agent_id)

    def build_sim(self, engine: "Engine",
                  tracer: typing.Optional["Tracer"] = None):
        """A fresh discrete-event sim instance on ``engine``."""
        if tracer is not None and not self.capabilities.supports_tracing:
            raise ValueError(
                f"backend {self.registry_name!r} does not support stage "
                f"tracing (capabilities.supports_tracing is False)")
        return self._build_sim(engine, tracer)

    def _build_sim(self, engine: "Engine", tracer):
        raise NotImplementedError

    def compile_plans(self, t_max: int = 5) -> int:
        """Warm the platform's memoized plans for one A3C routine shape
        (inference at batch 1, training at batch ``t_max``, sync).

        Side-effect free with respect to :mod:`repro.obs`: collection is
        suspended while plans build, exactly as the sims do on a cache
        miss.  Returns the number of task plans compiled.
        """
        observing = _obs.enabled()
        if observing:
            _obs.disable()
        try:
            return self._compile_plans(t_max)
        finally:
            if observing:
                _obs.enable()

    def _compile_plans(self, t_max: int) -> int:
        raise NotImplementedError

    def _quiet(self, build: typing.Callable[[], typing.Any]):
        """Run an analytic query with obs collection suspended, so
        latency/attribution questions never pollute the metrics a
        simulated run collects."""
        observing = _obs.enabled()
        if observing:
            _obs.disable()
        try:
            return build()
        finally:
            if observing:
                _obs.enable()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.registry_name!r} "
                f"({self.name})>")
