"""GPU/CPU software-baseline backends (paper Section 5.1).

Thin adapters over the :mod:`repro.gpu.platform` cost models, one per
baseline the paper compares against:

* ``a3c-cudnn``  — directly-invoked cuDNN/cuBLAS A3C;
* ``a3c-tf-gpu`` — TensorFlow A3C with its kernels on the GPU;
* ``a3c-tf-cpu`` — TensorFlow A3C computing on the host CPUs;
* ``ga3c-tf``    — the GA3C predictor/trainer-queue architecture.

The five former ``_GPUPlatformBase`` consumers (compare, bench,
harness) now see one protocol: latencies via ``infer_step`` /
``train_step``, attribution via ``attribution``, contention via
``build_sim`` — identical numbers to calling the platform directly.
"""

from __future__ import annotations

import typing

from repro.backends.protocol import BackendCapabilities, PlatformBackend
from repro.backends.registry import default_topology, register
from repro.gpu.platform import (
    A3CcuDNNPlatform,
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    GA3CTFPlatform,
)


class GPUBackend(PlatformBackend):
    """A ``repro.gpu.platform`` cost model behind the backend protocol.

    The analytic queries go through the platform's memoized
    ``task_seconds`` / ``task_buckets`` dispatchers, wrapped in
    :meth:`~repro.backends.protocol.PlatformBackend._quiet` so an
    analytic question never replays per-kernel observations into the
    metrics registry (only simulated task executions record).
    """

    def _build_sim(self, engine, tracer):
        del tracer                       # rejected by the base class
        return self.platform.build_sim(engine)

    def _compile_plans(self, t_max: int) -> int:
        compiled = 0
        for task, batch in (("inference", 1), ("train", t_max),
                            ("sync", 0)):
            self.platform.task_seconds(task, batch)
            self.platform.task_buckets(task, batch)
            compiled += 1
        return compiled

    def infer_step(self, batch: int = 1) -> float:
        """Uncontended inference latency in seconds."""
        return self._quiet(
            lambda: self.platform.task_seconds("inference", batch))

    def train_step(self, batch: int) -> float:
        """Uncontended training-task latency in seconds."""
        return self._quiet(
            lambda: self.platform.task_seconds("train", batch))

    def sync_step(self) -> float:
        """Uncontended local-model refresh latency in seconds."""
        return self._quiet(lambda: self.platform.task_seconds("sync"))

    def attribution(self, task: str, batch: int = 0
                    ) -> typing.Dict[str, float]:
        """Analytic cause-bucket seconds of one uncontended task."""
        if task not in ("inference", "train", "sync"):
            raise ValueError(f"unknown task {task!r}; expected "
                             f"'inference', 'train', or 'sync'")
        if task == "inference" and batch == 0:
            batch = 1
        if task == "train" and batch == 0:
            batch = 5
        return self._quiet(
            lambda: self.platform.task_buckets(task, batch))


#: registry name -> (platform class, capabilities).  The software
#: baselines all compute in fp32 (the paper's configuration); the
#: explicit declaration keeps the capability surface uniform with the
#: precision-parametric FPGA family.
_GPU_BACKENDS: typing.Dict[str, tuple] = {
    "a3c-cudnn": (A3CcuDNNPlatform,
                  BackendCapabilities(kind="gpu", precision="fp32")),
    "a3c-tf-gpu": (A3CTFGPUPlatform,
                   BackendCapabilities(kind="gpu", precision="fp32")),
    "a3c-tf-cpu": (A3CTFCPUPlatform,
                   BackendCapabilities(kind="host", precision="fp32")),
    "ga3c-tf": (GA3CTFPlatform,
                BackendCapabilities(kind="gpu", needs_sync=False,
                                    needs_bootstrap=False,
                                    batched_inference=True,
                                    precision="fp32")),
}


def _factory(registry_name: str, platform_class, capabilities):
    def build(topology=None, **overrides) -> GPUBackend:
        if topology is None:
            topology = default_topology()
        return GPUBackend(registry_name,
                          platform_class(topology, **overrides),
                          capabilities)
    build.__name__ = f"build_{registry_name.replace('-', '_')}"
    return build


def register_gpu_backends() -> None:
    """Register the four software baselines (idempotent)."""
    for registry_name, (platform_class, caps) in _GPU_BACKENDS.items():
        register(registry_name,
                 _factory(registry_name, platform_class, caps),
                 replace=True)
