"""Execution backends: one protocol over every platform.

The layering this package pins down (see ``docs/architecture.md``)::

    envs  ->  trainers  ->  backends  ->  sims
                 |             |
                 |             +-- fa3c-fpga / fa3c-single-cu /
                 |                 fa3c-alt1 / fa3c-alt2 /
                 |                 fa3c-fp16 / fa3c-int8
                 |                 (repro.fpga: platform / binding /
                 |                  simloop)
                 |             +-- a3c-cudnn / a3c-tf-gpu / a3c-tf-cpu /
                 |                 ga3c-tf   (repro.gpu.platform)
                 +-- actor execution (threads / procs / serial) is
                     orthogonal: `--actors`, not a backend

Trainers and the CLI hold a :class:`Backend` handle and never import a
platform class; platforms plug in via :func:`register`.  Every
registered backend satisfies the conformance suite
(``tests/test_backends_conformance.py``): registry round-trip, seeded
determinism, analytic step latencies, attribution buckets that sum to
the simulated total, and a drivable discrete-event sim.
"""

from repro.backends.fpga import FPGABackend, register_fpga_backends
from repro.backends.gpu import GPUBackend, register_gpu_backends
from repro.backends.protocol import (
    AGENT_SEED_STRIDE,
    EVAL_SEED_STRIDE,
    Backend,
    BackendCapabilities,
    PlatformBackend,
    derive_agent_seed,
    derive_eval_seed,
    derive_policy_seed,
)
from repro.backends.registry import (
    DEFAULT_BACKEND,
    capability,
    create,
    default_topology,
    is_registered,
    names,
    register,
    resolve,
)

register_fpga_backends()
register_gpu_backends()

__all__ = [
    "AGENT_SEED_STRIDE",
    "Backend",
    "BackendCapabilities",
    "DEFAULT_BACKEND",
    "EVAL_SEED_STRIDE",
    "FPGABackend",
    "GPUBackend",
    "PlatformBackend",
    "capability",
    "create",
    "default_topology",
    "derive_agent_seed",
    "derive_eval_seed",
    "derive_policy_seed",
    "is_registered",
    "names",
    "register",
    "register_fpga_backends",
    "register_gpu_backends",
    "resolve",
]
