"""FPGA backends: FA3C and its Section 5.4 configuration ablations.

Thin adapters over :class:`repro.fpga.platform.FA3CPlatform` — the
platform still owns the timing model and the discrete-event sim; the
adapter maps it onto the :class:`~repro.backends.protocol.Backend`
protocol and plugs it into the registry under:

* ``fa3c-fpga``       — the proposed dual-CU-pair design;
* ``fa3c-single-cu``  — one 2N-PE CU per pair;
* ``fa3c-alt1``       — FW parameter layout everywhere;
* ``fa3c-alt2``       — both layouts materialised in DRAM;
* ``fa3c-fp16``       — fp16 storage / fp32 accumulate datapath;
* ``fa3c-int8``       — symmetric int8 quantized datapath.
"""

from __future__ import annotations

import typing

from repro.backends.protocol import BackendCapabilities, PlatformBackend
from repro.backends.registry import default_topology, register
from repro.fpga.platform import FA3CPlatform
from repro.perf import stageplan as _stageplan

def _fpga_capabilities(precision: str = "fp32") -> BackendCapabilities:
    """The FA3C capability set at one datapath precision."""
    return BackendCapabilities(kind="fpga", needs_sync=True,
                               needs_bootstrap=True,
                               batched_inference=False,
                               supports_tracing=True,
                               precision=precision)

#: (kind, batch builder) pairs of one A3C routine's task shapes.
_ROUTINE_TASKS = (("inference", lambda t_max: 1),
                  ("train", lambda t_max: t_max),
                  ("sync", lambda t_max: 0))


class FPGABackend(PlatformBackend):
    """:class:`FA3CPlatform` behind the backend protocol."""

    def __init__(self, registry_name: str, platform: FA3CPlatform):
        # The capability mirrors the platform config, so a config-level
        # precision override is reflected in what the backend declares.
        super().__init__(registry_name, platform,
                         _fpga_capabilities(platform.config.precision))

    def _build_sim(self, engine, tracer):
        return self.platform.build_sim(engine, tracer=tracer)

    def _compile_plans(self, t_max: int) -> int:
        # Warms the shared global plan cache — the same entries the
        # sim's fast path binds, so a later measurement replays.
        compiled = 0
        for kind, batch_of in _ROUTINE_TASKS:
            _stageplan.CACHE.task_plan(self.platform, kind,
                                       batch_of(t_max))
            compiled += 1
        return compiled

    def infer_step(self, batch: int = 1) -> float:
        """Uncontended single-inference latency in seconds."""
        return self.platform.inference_latency(batch)

    def train_step(self, batch: int) -> float:
        """Uncontended training-task latency in seconds."""
        return self.platform.training_latency(batch)

    def sync_step(self) -> float:
        """Uncontended parameter-sync latency in seconds."""
        return self.platform.sync_latency()

    def attribution(self, task: str, batch: int = 0
                    ) -> typing.Dict[str, float]:
        """Analytic cause-bucket cycles of one uncontended task."""
        timing = self.platform.timing
        if task == "inference":
            stages = timing.inference_task(batch or 1)
        elif task == "train":
            stages = timing.training_task(batch or 5)
        elif task == "sync":
            stages = timing.sync_task()
        else:
            raise ValueError(f"unknown task {task!r}; expected "
                             f"'inference', 'train', or 'sync'")
        return self.platform.task_attribution(stages)


def _factory(registry_name: str, constructor: str):
    def build(topology=None, **overrides) -> FPGABackend:
        if topology is None:
            topology = default_topology()
        platform = getattr(FA3CPlatform, constructor)(topology,
                                                      **overrides)
        return FPGABackend(registry_name, platform)
    build.__name__ = f"build_{registry_name.replace('-', '_')}"
    return build


def register_fpga_backends() -> None:
    """Register the FA3C configurations (idempotent)."""
    for registry_name, constructor in (("fa3c-fpga", "fa3c"),
                                       ("fa3c-single-cu", "single_cu"),
                                       ("fa3c-alt1", "alt1"),
                                       ("fa3c-alt2", "alt2"),
                                       ("fa3c-fp16", "fp16"),
                                       ("fa3c-int8", "int8")):
        register(registry_name, _factory(registry_name, constructor),
                 replace=True)
