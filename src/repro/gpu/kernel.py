"""The GPU kernel cost model.

One kernel's duration is::

    launch + max(flops / (peak * utilisation * efficiency),
                 bytes / (bandwidth * efficiency))

where *utilisation* grows with the number of output elements (threads)
until the device's resident-thread capacity is reached — the formal version
of Section 3.2's observation that A3C's small batches cannot fill a GPU.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.specs import GPUSpec
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@dataclasses.dataclass(frozen=True)
class KernelCall:
    """One GPU kernel invocation's workload."""

    name: str
    flops: float            # floating-point operations
    bytes: float            # DRAM bytes touched (params + features)
    outputs: int            # output elements (drives occupancy)


class KernelCostModel:
    """Turns :class:`KernelCall` workloads into seconds."""

    def __init__(self, gpu: GPUSpec,
                 calibration: typing.Optional[GPUCalibration] = None):
        self.gpu = gpu
        self.cal = calibration or GPUCalibration()

    def utilisation(self, outputs: int) -> float:
        """Fraction of peak FLOPs reachable with this many outputs."""
        threads = outputs * self.cal.threads_per_output
        occupancy = min(1.0, threads / self.gpu.max_resident_threads)
        return max(self.cal.min_utilisation, occupancy)

    def compute_seconds(self, call: KernelCall) -> float:
        """Execution time of the kernel body (no launch)."""
        util = self.utilisation(call.outputs)
        compute = call.flops / (self.gpu.peak_flops * util *
                                self.cal.kernel_efficiency)
        memory = call.bytes / (self.gpu.mem_bandwidth *
                               self.cal.memory_efficiency)
        return max(compute, memory)

    @hot_path
    def kernel_seconds(self, call: KernelCall,
                       include_launch: bool = True) -> float:
        """Full kernel time as the host observes it."""
        body = self.compute_seconds(call)
        if _obs.enabled():
            metrics = _obs.metrics()
            if include_launch:
                metrics.counter("gpu.kernel.launches").inc(
                    kernel=call.name)
            metrics.histogram("gpu.kernel.occupancy").observe(
                self.utilisation(call.outputs))
            metrics.histogram("gpu.kernel.seconds").observe(
                body, kernel=call.name)
        return body + (self.cal.launch_overhead if include_launch else 0.0)

    def sequence_seconds(self, calls: typing.Sequence[KernelCall],
                         include_launch: bool = True) -> float:
        """Serial execution time of a kernel sequence."""
        return sum(self.kernel_seconds(call, include_launch)
                   for call in calls)

    def sequence_buckets(self, calls: typing.Sequence[KernelCall],
                         include_launch: bool = True
                         ) -> typing.Dict[str, float]:
        """Body-vs-launch split of a kernel sequence, in seconds.

        Feeds the attribution profiler; uses :meth:`compute_seconds`
        directly so no per-kernel metrics are recorded twice.
        """
        body = sum(self.compute_seconds(call) for call in calls)
        buckets = {"kernel": body}
        if include_launch:
            buckets["launch"] = len(calls) * self.cal.launch_overhead
        return buckets

    def launch_fraction(self, calls: typing.Sequence[KernelCall]) -> float:
        """Share of total time spent in launch overhead (Section 3.4)."""
        total = self.sequence_seconds(calls, include_launch=True)
        launches = len(calls) * self.cal.launch_overhead
        return launches / total if total > 0 else 0.0

    def pcie_seconds(self, num_bytes: float) -> float:
        """One host<->device DMA transfer."""
        return self.cal.pcie_latency + num_bytes / self.gpu.pcie_bandwidth
