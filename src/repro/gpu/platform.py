"""The four software baseline platforms (paper Section 5.1).

Each platform exposes the same simulation interface as
:class:`repro.fpga.platform.FPGASim` — process bodies for ``inference``,
``train`` and ``sync`` — so the throughput experiment drives every platform
identically.

* :class:`A3CcuDNNPlatform` — direct cuDNN/cuBLAS invocation; one shared
  GPU serialises all agents' tasks.
* :class:`A3CTFGPUPlatform` — same structure plus TensorFlow's per-run
  overhead and kernel slowdown.
* :class:`GA3CTFPlatform` — the GA3C architecture: agents submit states to
  a predictor queue served in batches; training batches run from a trainer
  queue and do *not* block the submitting agent.
* :class:`A3CTFCPUPlatform` — TensorFlow on the host CPUs.
"""

from __future__ import annotations

import heapq
import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.cudnn import CuDNNModel
from repro.gpu.kernel import KernelCall, KernelCostModel
from repro.gpu.specs import P100, XEON_E5_2630_PAIR, GPUSpec, HostSpec
from repro.nn.network import NetworkTopology
from repro.obs import runtime as _obs
from repro.obs.prof import buckets as _prof
from repro.perf import runtime as _fast
from repro.perf.hotpath import hot_path
from repro.sim import Engine, Resource, Store
from repro.sim.events import Event


def _record_task_profile(platform_name: str, task: str,
                         buckets: typing.Mapping[str, float]) -> None:
    """Record one task's cause-bucket split as integer nanoseconds.

    The total counter is incremented by the sum of the recorded bucket
    integers, so buckets sum to the total exactly (the GPU analogue of
    the FPGA cycle invariant)."""
    metrics = _obs.metrics()
    counter = metrics.counter(_prof.GPU_TIME_METRIC)
    total = 0
    for bucket, seconds in buckets.items():
        ns = int(round(seconds * 1e9))
        if ns <= 0:
            continue
        counter.inc(ns, platform=platform_name, task=task, bucket=bucket)
        total += ns
    metrics.counter(_prof.GPU_TIME_TOTAL_METRIC).inc(
        total, platform=platform_name, task=task)


class _GPUPlatformBase:
    """Shared machinery: kernel model + analytic task latencies."""

    name = "gpu-base"

    def __init__(self, topology: NetworkTopology,
                 gpu: GPUSpec = P100,
                 calibration: typing.Optional[GPUCalibration] = None):
        self.topology = topology
        self.cal = calibration or GPUCalibration()
        self.kernels = KernelCostModel(gpu, self.cal)
        self.model = CuDNNModel(topology)
        # (kind, task, batch) -> seconds / buckets.  Latencies are pure
        # functions of (topology, calibration, batch), all fixed at
        # construction (GPUCalibration is frozen), so memoizing them is
        # value-preserving; the fast-path switch gates it only so
        # REPRO_FASTPATH=0 measures the true re-deriving cost.
        self._task_cache: typing.Dict[tuple, typing.Any] = {}

    # Per-platform multipliers (TensorFlow adds overheads).
    task_overhead = 0.0
    kernel_slowdown = 1.0

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        return self.kernels.sequence_seconds(calls) * self.kernel_slowdown

    def inference_seconds(self, batch: int = 1) -> float:
        """End-to-end inference latency: DMA in, kernels, DMA out."""
        return (self.task_overhead
                + self.kernels.pcie_seconds(self.model.input_bytes(batch))
                + self._kernel_time(self.model.inference_kernels(batch))
                + self.kernels.pcie_seconds(self.model.output_bytes(batch)))

    def training_seconds(self, batch: int) -> float:
        """Training-task latency (head gradients arrive over PCIe)."""
        last = self.topology.layers[-1]
        grad_bytes = batch * last.num_outputs * 4
        return (self.task_overhead
                + self.kernels.pcie_seconds(grad_bytes)
                + self._kernel_time(self.model.training_kernels(batch)))

    def sync_seconds(self) -> float:
        """Local-model refresh from the global model (device copy)."""
        return self.task_overhead \
            + self._kernel_time(self.model.sync_kernels())

    def _kernel_buckets(self, calls: typing.Sequence[KernelCall]
                        ) -> typing.Dict[str, float]:
        """Body-vs-launch seconds, scaled like :meth:`_kernel_time`."""
        return {bucket: seconds * self.kernel_slowdown
                for bucket, seconds in
                self.kernels.sequence_buckets(calls).items()}

    def inference_buckets(self, batch: int = 1
                          ) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`inference_seconds`."""
        buckets = self._kernel_buckets(self.model.inference_kernels(batch))
        buckets[_prof.GPU_MEMCPY] = (
            self.kernels.pcie_seconds(self.model.input_bytes(batch))
            + self.kernels.pcie_seconds(self.model.output_bytes(batch)))
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def training_buckets(self, batch: int) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`training_seconds`."""
        buckets = self._kernel_buckets(self.model.training_kernels(batch))
        last = self.topology.layers[-1]
        buckets[_prof.GPU_MEMCPY] = self.kernels.pcie_seconds(
            batch * last.num_outputs * 4)
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def sync_buckets(self) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`sync_seconds`."""
        buckets = self._kernel_buckets(self.model.sync_kernels())
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def _build_seconds(self, task: str, batch: int) -> float:
        if task == "inference":
            return self.inference_seconds(batch)
        if task == "train":
            return self.training_seconds(batch)
        return self.sync_seconds()

    def _build_buckets(self, task: str, batch: int
                       ) -> typing.Dict[str, float]:
        if task == "inference":
            return self.inference_buckets(batch)
        if task == "train":
            return self.training_buckets(batch)
        return self.sync_buckets()

    def _task_kernels(self, task: str, batch: int
                      ) -> typing.List[KernelCall]:
        if task == "inference":
            return self.model.inference_kernels(batch)
        if task == "train":
            return self.model.training_kernels(batch)
        return self.model.sync_kernels()

    def _task_obs_rows(self, task: str, batch: int) -> tuple:
        """The per-kernel observations one task emits, precomputed.

        :meth:`KernelCostModel.kernel_seconds` records a launch count and
        two histogram observations per kernel; when the latency itself is
        memoized those recordings must still happen once per simulated
        task, so the rows are cached alongside the seconds and replayed.
        """
        kernels = self.kernels
        return tuple((call.name, kernels.utilisation(call.outputs),
                      kernels.compute_seconds(call))
                     for call in self._task_kernels(task, batch))

    @staticmethod
    def _replay_kernel_obs(rows: tuple) -> None:
        metrics = _obs.metrics()
        launches = metrics.counter("gpu.kernel.launches")
        occupancy = metrics.histogram("gpu.kernel.occupancy")
        seconds = metrics.histogram("gpu.kernel.seconds")
        for name, occ, body in rows:
            launches.inc(kernel=name)
            occupancy.observe(occ)
            seconds.observe(body, kernel=name)

    def task_seconds(self, task: str, batch: int = 0) -> float:
        """Memoized ``{inference,train,sync}_seconds`` dispatcher.

        Dispatches through the instance methods, so platform subclasses
        that override a latency model are still honoured.  The entry is
        built with collection suspended (the build's own per-kernel
        recordings happen exactly once otherwise) and the cached
        observation rows are replayed per call instead, so the metrics
        a run collects are identical on both paths.
        """
        if not _fast.enabled():
            return self._build_seconds(task, batch)
        key = ("seconds", task, batch)
        entry = self._task_cache.get(key)
        if entry is None:
            observing = _obs.enabled()
            if observing:
                _obs.disable()
            try:
                built = self._build_seconds(task, batch)
            finally:
                if observing:
                    _obs.enable()
            entry = (built, self._task_obs_rows(task, batch))
            self._task_cache[key] = entry
        if entry[1] and _obs.enabled():
            self._replay_kernel_obs(entry[1])
        return entry[0]

    def task_buckets(self, task: str, batch: int = 0
                     ) -> typing.Dict[str, float]:
        """Memoized cause-bucket dispatcher; returns a fresh copy
        (callers annotate the dict in place).  Bucket builders use
        :meth:`KernelCostModel.sequence_buckets`, which records nothing,
        so no replay is needed here."""
        if not _fast.enabled():
            return self._build_buckets(task, batch)
        key = ("buckets", task, batch)
        value = self._task_cache.get(key)
        if value is None:
            value = self._build_buckets(task, batch)
            self._task_cache[key] = value
        return dict(value)

    def launch_fraction(self, batch: int = 1) -> float:
        """Launch-overhead share of an A3C routine's kernel time
        (the Section 3.4 measurement)."""
        calls = []
        for _ in range(6):
            calls.extend(self.model.inference_kernels(1))
        calls.extend(self.model.training_kernels(batch))
        return self.kernels.launch_fraction(calls)

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine)


class A3CcuDNNPlatform(_GPUPlatformBase):
    """Directly-invoked cuDNN/cuBLAS A3C (the best GPU baseline)."""

    name = "A3C-cuDNN"


class A3CTFGPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C running its kernels on the GPU."""

    name = "A3C-TF-GPU"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown


class A3CTFCPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C computing on the host CPUs only."""

    name = "A3C-TF-CPU"

    def __init__(self, topology: NetworkTopology,
                 host: HostSpec = XEON_E5_2630_PAIR,
                 calibration: typing.Optional[GPUCalibration] = None):
        super().__init__(topology, calibration=calibration)
        self.host = host
        self.task_overhead = self.cal.tf_run_overhead

    #: Per-op executor dispatch (much cheaper than a GPU launch).
    _DISPATCH_SECONDS = 4e-6

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        throughput = self.host.peak_flops * self.cal.cpu_efficiency
        compute = sum(call.flops for call in calls) / throughput
        dispatch = len(calls) * self._DISPATCH_SECONDS
        return compute + dispatch

    def _task_obs_rows(self, task: str, batch: int) -> tuple:
        # Host execution never goes through kernel_seconds, so there are
        # no per-kernel recordings to replay.
        return ()

    def _kernel_buckets(self, calls: typing.Sequence[KernelCall]
                        ) -> typing.Dict[str, float]:
        throughput = self.host.peak_flops * self.cal.cpu_efficiency
        compute = sum(call.flops for call in calls) / throughput
        # Executor dispatch is framework time, not kernel launch.
        return {_prof.GPU_KERNEL: compute,
                _prof.GPU_FRAMEWORK: len(calls) * self._DISPATCH_SECONDS}

    def inference_seconds(self, batch: int = 1) -> float:
        # No PCIe: observations stay in host memory.
        return self.task_overhead \
            + self._kernel_time(self.model.inference_kernels(batch))

    def training_seconds(self, batch: int) -> float:
        return self.task_overhead \
            + self._kernel_time(self.model.training_kernels(batch))

    def sync_seconds(self) -> float:
        return self.task_overhead / 2 \
            + self._kernel_time(self.model.sync_kernels())

    def _host_buckets(self, calls: typing.Sequence[KernelCall],
                      overhead: float) -> typing.Dict[str, float]:
        buckets = self._kernel_buckets(calls)
        buckets[_prof.GPU_FRAMEWORK] = \
            buckets.get(_prof.GPU_FRAMEWORK, 0.0) + overhead
        return buckets

    def inference_buckets(self, batch: int = 1
                          ) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.inference_kernels(batch),
                                  self.task_overhead)

    def training_buckets(self, batch: int) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.training_kernels(batch),
                                  self.task_overhead)

    def sync_buckets(self) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.sync_kernels(),
                                  self.task_overhead / 2)

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine,
                      executors=self.cal.cpu_executors)


class _AgentChainBase:
    """Callback-compiled agent routine (the fused DES fast path).

    Replays ``repro.platforms.throughput._agent_process`` event-for-event
    without the generator machinery: every ``Event``/``Timeout`` is
    created at the same execution point, in the same order, as the
    generator path would create it, so heap sequence numbers, resource
    grant order and therefore every modelled time are bit-identical.
    Only the per-event ``generator.send`` resume (the simulator's
    dominant host cost at large agent counts) is bypassed — each event
    fires a bound-method continuation instead.

    Subclasses compile the routine into a flat micro-op program in
    ``self.ops``; :meth:`_advance` interprets it, returning whenever an
    op must wait on an event and resuming from the same point when the
    event fires.  ``completion`` succeeds after the last routine,
    standing in for the ``Process`` end event.
    """

    __slots__ = ("sim", "engine", "t_max", "routines", "meter",
                 "latencies", "warmup", "routine_index", "op_index",
                 "ops", "completion", "_observing", "_dur", "_started")

    def __init__(self, sim, engine: Engine, t_max: int, routines: int,
                 host, meter, needs_sync: bool, needs_bootstrap: bool,
                 latencies: typing.Optional[list] = None):
        self.sim = sim
        self.engine = engine
        self.t_max = t_max
        self.routines = routines
        self.meter = meter
        self.latencies = latencies
        self.warmup = routines // 4
        self.routine_index = 0
        self.op_index = 0
        # Observability cannot toggle inside engine.run (scenario scopes
        # wrap whole measurements), so one check covers the run.
        self._observing = _obs.enabled()
        self._dur = 0.0
        self._started = 0.0
        self.ops = self._compile(t_max, host, needs_sync, needs_bootstrap)
        self.completion = Event(engine)
        # Bootstrap exactly like Process.__init__: an immediate heap
        # entry resumes the chain at time zero (the engine dispatches
        # bound methods directly — see Engine.run).
        heapq.heappush(engine._queue,
                       (engine._now, engine._sequence, self._advance))
        engine._sequence += 1

    def _compile(self, t_max: int, host, needs_sync: bool,
                 needs_bootstrap: bool) -> list:
        raise NotImplementedError

    def _advance(self, _event: Event) -> None:
        raise NotImplementedError


class _GPUAgentChain(_AgentChainBase):
    """Fused agent routine against :class:`GPUSim`'s shared device."""

    __slots__ = ()

    def _compile(self, t_max: int, host, needs_sync: bool,
                 needs_bootstrap: bool) -> list:
        # A device task is flattened into its three wait points —
        # ("acq", name, batch, tracked, dur?) / ("hold",) /
        # ("rel", tracked) — mirroring Resource.use; ("sleep", s) is a
        # host-side timeout.  The op order matches _agent_process exactly.
        # The acq slot caches the task latency once computed (the value is
        # a pure function of the frozen platform): with observability off
        # there is nothing to record per call, so skipping the memoized
        # task_seconds dispatch is value-preserving.
        tracked = self.latencies is not None

        def task(name, batch, track):
            return [["acq", name, batch, track, None], ("hold",),
                    ("rel", track)]

        ops: list = []
        if needs_sync:
            ops += task("sync", 0, False)
        for _ in range(t_max):
            if host.step_time > 0:
                ops.append(("sleep", host.step_time))
            ops += task("inference", 1, tracked)
        if needs_bootstrap:
            ops += task("inference", 1, False)
        if host.train_prep_time > 0:
            ops.append(("sleep", host.train_prep_time))
        ops += task("train", t_max, False)
        return ops

    @hot_path
    def _advance(self, _event) -> None:
        engine = self.engine
        sim = self.sim
        device = sim.device
        platform = sim.platform
        ops = self.ops
        advance = self._advance
        queue = engine._queue
        heappush = heapq.heappush
        count = len(ops)
        index = self.op_index
        while True:
            if index == count:
                self.meter.record_routine(engine._now, self.t_max)
                self.routine_index += 1
                if self.routine_index >= self.routines:
                    self.completion.succeed()
                    return
                index = 0
                continue
            op = ops[index]
            code = op[0]
            if code == "acq":
                if op[3]:
                    self._started = engine._now
                if self._observing:
                    _record_task_profile(
                        platform.name, op[1],
                        platform.task_buckets(op[1], op[2]))
                    self._dur = platform.task_seconds(op[1], op[2])
                else:
                    dur = op[4]
                    if dur is None:
                        dur = platform.task_seconds(op[1], op[2])
                        op[4] = dur
                    self._dur = dur
                # Resource.acquire inlined.  On an immediate grant the
                # device state is already updated, so the zero-delay
                # grant notification is private to this chain and fuses
                # with the hold timer into one heap entry (the hold op
                # is skipped); the timer lands at the same strictly-later
                # time either way.  A contended acquire keeps the wake
                # event and runs the hold op when the server transfers.
                device.total_requests += 1
                if device._in_use < device.capacity \
                        and not device._waiters:
                    now = engine._now
                    device._busy_time += \
                        device._in_use * (now - device._last_change)
                    device._last_change = now
                    device._in_use += 1
                    self.op_index = index + 2
                    heappush(queue, (engine._now + self._dur,
                                     engine._sequence, advance))
                    engine._sequence += 1
                else:
                    event = Event(engine)
                    device._waiters.append((event, engine._now))
                    self.op_index = index + 1
                    event.callbacks.append(advance)
                return
            if code == "hold":
                self.op_index = index + 1
                heappush(queue, (engine._now + self._dur,
                                 engine._sequence, advance))
                engine._sequence += 1
                return
            if code == "rel":
                # Resource.release inlined.
                if device._waiters:
                    event, enqueued_at = device._waiters.popleft()
                    device.total_wait_time += engine._now - enqueued_at
                    event.succeed()
                else:
                    now = engine._now
                    device._busy_time += \
                        device._in_use * (now - device._last_change)
                    device._last_change = now
                    device._in_use -= 1
                if op[1] and self.routine_index >= self.warmup:
                    self.latencies.append(engine._now - self._started)
                index += 1
                continue
            # ("sleep", delay)
            self.op_index = index + 1
            heappush(queue, (engine._now + op[1], engine._sequence,
                             advance))
            engine._sequence += 1
            return


class _GA3CAgentChain(_AgentChainBase):
    """Fused agent routine against :class:`GA3CSim`'s request queues."""

    __slots__ = ()

    def _compile(self, t_max: int, host, needs_sync: bool,
                 needs_bootstrap: bool) -> list:
        # GA3CSim.sync is a zero-length timeout; ("predict", tracked) /
        # ("lat", tracked) bracket the reply-event round trip through the
        # predictor queue; ("train",) enqueues a rollout and waits out the
        # non-blocking zero timeout.
        tracked = self.latencies is not None

        def predict(track):
            return [("predict", track), ("lat", track)]

        ops: list = []
        if needs_sync:
            ops.append(("sleep", 0.0))
        for _ in range(t_max):
            if host.step_time > 0:
                ops.append(("sleep", host.step_time))
            ops += predict(tracked)
        if needs_bootstrap:
            ops += predict(False)
        if host.train_prep_time > 0:
            ops.append(("sleep", host.train_prep_time))
        ops.append(("train",))
        return ops

    @hot_path
    def _advance(self, _event) -> None:
        engine = self.engine
        sim = self.sim
        ops = self.ops
        advance = self._advance
        queue = engine._queue
        heappush = heapq.heappush
        count = len(ops)
        index = self.op_index
        while True:
            if index == count:
                self.meter.record_routine(engine._now, self.t_max)
                self.routine_index += 1
                if self.routine_index >= self.routines:
                    self.completion.succeed()
                    return
                index = 0
                continue
            op = ops[index]
            code = op[0]
            if code == "sleep":
                self.op_index = index + 1
                heappush(queue, (engine._now + op[1], engine._sequence,
                                 advance))
                engine._sequence += 1
                return
            if code == "predict":
                if op[1]:
                    self._started = engine._now
                self.op_index = index + 1
                reply = Event(engine)
                sim.predict_queue.put(reply)
                reply.callbacks.append(advance)
                return
            if code == "lat":
                if op[1] and self.routine_index >= self.warmup:
                    self.latencies.append(engine._now - self._started)
                index += 1
                continue
            # ("train",)
            self.op_index = index + 1
            sim.train_queue.put(self.t_max)
            heappush(queue, (engine._now, engine._sequence, advance))
            engine._sequence += 1
            return


class _GA3CPredictorChain:
    """Callback-compiled predictor server (fast-path GA3CSim only).

    State-for-state replica of :meth:`GA3CSim._predictor`: same events,
    created at the same execution points, so batching behaviour and
    modelled times are bit-identical to the generator.
    """

    __slots__ = ("sim", "engine", "_state", "_batch", "_dur")

    def __init__(self, sim: "GA3CSim", engine: Engine):
        self.sim = sim
        self.engine = engine
        self._state = 0
        self._batch: list = []
        self._dur = 0.0
        heapq.heappush(engine._queue,
                       (engine._now, engine._sequence, self._advance))
        engine._sequence += 1

    @hot_path
    def _advance(self, event) -> None:
        sim = self.sim
        platform = sim.platform
        state = self._state
        if state == 1:
            # first = yield predict_queue.get() has fired.
            batch = [event._value] + sim.predict_queue.get_batch(
                platform.max_prediction_batch - 1)
            self._batch = batch
            if _obs.enabled():
                buckets = platform.task_buckets("inference", len(batch))
                buckets[_prof.GPU_FRAMEWORK] = (
                    buckets.get(_prof.GPU_FRAMEWORK, 0.0)
                    + len(batch) * platform.cal.ga3c_request_overhead)
                _record_task_profile(platform.name, "predict", buckets)
            self._state = 2
            engine = self.engine
            delay = len(batch) * platform.cal.ga3c_request_overhead
            heapq.heappush(engine._queue,
                           (engine._now + delay, engine._sequence,
                            self._advance))
            engine._sequence += 1
            return
        if state == 2:
            dur = platform.task_seconds("inference", len(self._batch))
            device = sim.device
            engine = self.engine
            # Inlined acquire with grant+hold fusion (see the agent
            # chain's acq op for the argument).
            device.total_requests += 1
            if device._in_use < device.capacity and not device._waiters:
                now = engine._now
                device._busy_time += \
                    device._in_use * (now - device._last_change)
                device._last_change = now
                device._in_use += 1
                self._state = 4
                heapq.heappush(engine._queue,
                               (engine._now + dur, engine._sequence,
                                self._advance))
                engine._sequence += 1
            else:
                self._dur = dur
                event = Event(engine)
                device._waiters.append((event, engine._now))
                self._state = 3
                event.callbacks.append(self._advance)
            return
        if state == 3:
            self._state = 4
            engine = self.engine
            heapq.heappush(engine._queue,
                           (engine._now + self._dur, engine._sequence,
                            self._advance))
            engine._sequence += 1
            return
        if state == 4:
            sim.device.release()
            for reply in self._batch:
                reply.succeed()
        # state 0 (process start) falls through here too: block on the
        # next request.
        self._state = 1
        sim.predict_queue.get().callbacks.append(self._advance)


class _GA3CTrainerChain:
    """Callback-compiled trainer server (fast-path GA3CSim only);
    replicates :meth:`GA3CSim._trainer` event-for-event."""

    __slots__ = ("sim", "engine", "_state", "_dur")

    def __init__(self, sim: "GA3CSim", engine: Engine):
        self.sim = sim
        self.engine = engine
        self._state = 0
        self._dur = 0.0
        heapq.heappush(engine._queue,
                       (engine._now, engine._sequence, self._advance))
        engine._sequence += 1

    @hot_path
    def _advance(self, event) -> None:
        sim = self.sim
        platform = sim.platform
        state = self._state
        if state == 1:
            extra = sim.train_queue.get_batch(
                platform.training_batch_rollouts - 1)
            total = int(event._value) + sum(int(b) for b in extra)
            if _obs.enabled():
                _record_task_profile(platform.name, "train",
                                     platform.task_buckets("train", total))
            dur = platform.task_seconds("train", total)
            device = sim.device
            engine = self.engine
            # Inlined acquire with grant+hold fusion (see the agent
            # chain's acq op for the argument).
            device.total_requests += 1
            if device._in_use < device.capacity and not device._waiters:
                now = engine._now
                device._busy_time += \
                    device._in_use * (now - device._last_change)
                device._last_change = now
                device._in_use += 1
                self._state = 3
                heapq.heappush(engine._queue,
                               (engine._now + dur, engine._sequence,
                                self._advance))
                engine._sequence += 1
            else:
                self._dur = dur
                event = Event(engine)
                device._waiters.append((event, engine._now))
                self._state = 2
                event.callbacks.append(self._advance)
            return
        if state == 2:
            self._state = 3
            engine = self.engine
            heapq.heappush(engine._queue,
                           (engine._now + self._dur, engine._sequence,
                            self._advance))
            engine._sequence += 1
            return
        if state == 3:
            sim.device.release()
        self._state = 1
        sim.train_queue.get().callbacks.append(self._advance)


class GPUSim:
    """Discrete-event instance: one shared device serialises tasks."""

    def __init__(self, platform: _GPUPlatformBase, engine: Engine,
                 executors: int = 1):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=executors, name="device")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def inference(self, agent_id: int, batch: int = 1):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "inference",
                                 self.platform.task_buckets("inference",
                                                            batch))
        yield from self.device.use(
            self.platform.task_seconds("inference", batch))

    def train(self, agent_id: int, batch: int):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "train",
                                 self.platform.task_buckets("train",
                                                            batch))
        yield from self.device.use(
            self.platform.task_seconds("train", batch))

    def sync(self, agent_id: int):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "sync",
                                 self.platform.task_buckets("sync"))
        yield from self.device.use(self.platform.task_seconds("sync"))

    def agent_chain(self, agent_id: int, t_max: int, routines: int,
                    host, meter, needs_sync: bool, needs_bootstrap: bool,
                    latencies: typing.Optional[list] = None) -> Event:
        """Fused equivalent of ``throughput._agent_process``: returns an
        event that succeeds once ``routines`` routines have run."""
        del agent_id
        return _GPUAgentChain(self, self.engine, t_max, routines, host,
                              meter, needs_sync, needs_bootstrap,
                              latencies).completion


class GA3CTFPlatform(_GPUPlatformBase):
    """The GA3C architecture on TensorFlow.

    Agents post prediction requests into a queue; a predictor thread
    drains the queue into one batched inference on the single global
    model.  Rollouts go to a trainer queue; training batches also run on
    the device but do not block agents (Section 6).
    """

    name = "GA3C-TF"
    #: GA3C has no per-agent local model: no sync, and bootstrapping is
    #: folded into the server's batched predictions.
    needs_sync = False
    needs_bootstrap = False

    def __init__(self, *args, max_prediction_batch: int = 64,
                 training_batch_rollouts: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown
        self.max_prediction_batch = max_prediction_batch
        self.training_batch_rollouts = training_batch_rollouts

    def build_sim(self, engine: Engine) -> "GA3CSim":
        return GA3CSim(self, engine)


class GA3CSim:
    """Predictor/trainer-queue simulation of GA3C."""

    def __init__(self, platform: GA3CTFPlatform, engine: Engine):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=1, name="gpu")
        self.predict_queue = Store(engine, name="predict")
        self.train_queue = Store(engine, name="train")
        if _fast.enabled():
            _GA3CPredictorChain(self, engine)
            _GA3CTrainerChain(self, engine)
        else:
            engine.process(self._predictor(), name="ga3c-predictor")
            engine.process(self._trainer(), name="ga3c-trainer")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def _predictor(self):
        platform = self.platform
        while True:
            first = yield self.predict_queue.get()
            batch = [first] + self.predict_queue.get_batch(
                platform.max_prediction_batch - 1)
            # Per-request Python-side handling (dequeue, batch assembly,
            # result scatter) serialises in the predictor thread.
            if _obs.enabled():
                buckets = platform.task_buckets("inference", len(batch))
                buckets[_prof.GPU_FRAMEWORK] = (
                    buckets.get(_prof.GPU_FRAMEWORK, 0.0)
                    + len(batch) * platform.cal.ga3c_request_overhead)
                _record_task_profile(platform.name, "predict", buckets)
            yield self.engine.timeout(
                len(batch) * platform.cal.ga3c_request_overhead)
            yield from self.device.use(
                platform.task_seconds("inference", len(batch)))
            for reply in batch:
                reply.succeed()

    def _trainer(self):
        platform = self.platform
        while True:
            first = yield self.train_queue.get()
            extra = self.train_queue.get_batch(
                platform.training_batch_rollouts - 1)
            total = int(first) + sum(int(b) for b in extra)
            if _obs.enabled():
                _record_task_profile(platform.name, "train",
                                     platform.task_buckets("train", total))
            yield from self.device.use(
                platform.task_seconds("train", total))

    # -- agent-facing interface ------------------------------------------

    def inference(self, agent_id: int, batch: int = 1):
        """Submit one state and wait for the batched prediction."""
        del agent_id, batch
        reply = self.engine.event()
        self.predict_queue.put(reply)
        yield reply

    def train(self, agent_id: int, batch: int):
        """Queue a rollout for the trainer; does not block the agent."""
        del agent_id
        self.train_queue.put(batch)
        yield self.engine.timeout(0.0)

    def sync(self, agent_id: int):
        """GA3C has no local models, hence no parameter sync."""
        del agent_id
        yield self.engine.timeout(0.0)

    def agent_chain(self, agent_id: int, t_max: int, routines: int,
                    host, meter, needs_sync: bool, needs_bootstrap: bool,
                    latencies: typing.Optional[list] = None) -> Event:
        """Fused equivalent of ``throughput._agent_process``: returns an
        event that succeeds once ``routines`` routines have run.  The
        predictor and trainer stay generator processes — they run once
        per *batch*, so their resume overhead is already amortised."""
        del agent_id
        return _GA3CAgentChain(self, self.engine, t_max, routines, host,
                               meter, needs_sync, needs_bootstrap,
                               latencies).completion
