"""The four software baseline platforms (paper Section 5.1).

Each platform exposes the same simulation interface as
:class:`repro.fpga.platform.FPGASim` — process bodies for ``inference``,
``train`` and ``sync`` — so the throughput experiment drives every platform
identically.

* :class:`A3CcuDNNPlatform` — direct cuDNN/cuBLAS invocation; one shared
  GPU serialises all agents' tasks.
* :class:`A3CTFGPUPlatform` — same structure plus TensorFlow's per-run
  overhead and kernel slowdown.
* :class:`GA3CTFPlatform` — the GA3C architecture: agents submit states to
  a predictor queue served in batches; training batches run from a trainer
  queue and do *not* block the submitting agent.
* :class:`A3CTFCPUPlatform` — TensorFlow on the host CPUs.
"""

from __future__ import annotations

import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.cudnn import CuDNNModel
from repro.gpu.kernel import KernelCall, KernelCostModel
from repro.gpu.specs import P100, XEON_E5_2630_PAIR, GPUSpec, HostSpec
from repro.nn.network import NetworkTopology
from repro.obs import runtime as _obs
from repro.obs.prof import buckets as _prof
from repro.perf import runtime as _fast
from repro.sim import Engine, Resource, Store


def _record_task_profile(platform_name: str, task: str,
                         buckets: typing.Mapping[str, float]) -> None:
    """Record one task's cause-bucket split as integer nanoseconds.

    The total counter is incremented by the sum of the recorded bucket
    integers, so buckets sum to the total exactly (the GPU analogue of
    the FPGA cycle invariant)."""
    metrics = _obs.metrics()
    counter = metrics.counter(_prof.GPU_TIME_METRIC)
    total = 0
    for bucket, seconds in buckets.items():
        ns = int(round(seconds * 1e9))
        if ns <= 0:
            continue
        counter.inc(ns, platform=platform_name, task=task, bucket=bucket)
        total += ns
    metrics.counter(_prof.GPU_TIME_TOTAL_METRIC).inc(
        total, platform=platform_name, task=task)


class _GPUPlatformBase:
    """Shared machinery: kernel model + analytic task latencies."""

    name = "gpu-base"

    def __init__(self, topology: NetworkTopology,
                 gpu: GPUSpec = P100,
                 calibration: typing.Optional[GPUCalibration] = None):
        self.topology = topology
        self.cal = calibration or GPUCalibration()
        self.kernels = KernelCostModel(gpu, self.cal)
        self.model = CuDNNModel(topology)
        # (kind, task, batch) -> seconds / buckets.  Latencies are pure
        # functions of (topology, calibration, batch), all fixed at
        # construction (GPUCalibration is frozen), so memoizing them is
        # value-preserving; the fast-path switch gates it only so
        # REPRO_FASTPATH=0 measures the true re-deriving cost.
        self._task_cache: typing.Dict[tuple, typing.Any] = {}

    # Per-platform multipliers (TensorFlow adds overheads).
    task_overhead = 0.0
    kernel_slowdown = 1.0

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        return self.kernels.sequence_seconds(calls) * self.kernel_slowdown

    def inference_seconds(self, batch: int = 1) -> float:
        """End-to-end inference latency: DMA in, kernels, DMA out."""
        return (self.task_overhead
                + self.kernels.pcie_seconds(self.model.input_bytes(batch))
                + self._kernel_time(self.model.inference_kernels(batch))
                + self.kernels.pcie_seconds(self.model.output_bytes(batch)))

    def training_seconds(self, batch: int) -> float:
        """Training-task latency (head gradients arrive over PCIe)."""
        last = self.topology.layers[-1]
        grad_bytes = batch * last.num_outputs * 4
        return (self.task_overhead
                + self.kernels.pcie_seconds(grad_bytes)
                + self._kernel_time(self.model.training_kernels(batch)))

    def sync_seconds(self) -> float:
        """Local-model refresh from the global model (device copy)."""
        return self.task_overhead \
            + self._kernel_time(self.model.sync_kernels())

    def _kernel_buckets(self, calls: typing.Sequence[KernelCall]
                        ) -> typing.Dict[str, float]:
        """Body-vs-launch seconds, scaled like :meth:`_kernel_time`."""
        return {bucket: seconds * self.kernel_slowdown
                for bucket, seconds in
                self.kernels.sequence_buckets(calls).items()}

    def inference_buckets(self, batch: int = 1
                          ) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`inference_seconds`."""
        buckets = self._kernel_buckets(self.model.inference_kernels(batch))
        buckets[_prof.GPU_MEMCPY] = (
            self.kernels.pcie_seconds(self.model.input_bytes(batch))
            + self.kernels.pcie_seconds(self.model.output_bytes(batch)))
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def training_buckets(self, batch: int) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`training_seconds`."""
        buckets = self._kernel_buckets(self.model.training_kernels(batch))
        last = self.topology.layers[-1]
        buckets[_prof.GPU_MEMCPY] = self.kernels.pcie_seconds(
            batch * last.num_outputs * 4)
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def sync_buckets(self) -> typing.Dict[str, float]:
        """Cause-bucket split mirroring :meth:`sync_seconds`."""
        buckets = self._kernel_buckets(self.model.sync_kernels())
        if self.task_overhead:
            buckets[_prof.GPU_FRAMEWORK] = self.task_overhead
        return buckets

    def _build_seconds(self, task: str, batch: int) -> float:
        if task == "inference":
            return self.inference_seconds(batch)
        if task == "train":
            return self.training_seconds(batch)
        return self.sync_seconds()

    def _build_buckets(self, task: str, batch: int
                       ) -> typing.Dict[str, float]:
        if task == "inference":
            return self.inference_buckets(batch)
        if task == "train":
            return self.training_buckets(batch)
        return self.sync_buckets()

    def _task_kernels(self, task: str, batch: int
                      ) -> typing.List[KernelCall]:
        if task == "inference":
            return self.model.inference_kernels(batch)
        if task == "train":
            return self.model.training_kernels(batch)
        return self.model.sync_kernels()

    def _task_obs_rows(self, task: str, batch: int) -> tuple:
        """The per-kernel observations one task emits, precomputed.

        :meth:`KernelCostModel.kernel_seconds` records a launch count and
        two histogram observations per kernel; when the latency itself is
        memoized those recordings must still happen once per simulated
        task, so the rows are cached alongside the seconds and replayed.
        """
        kernels = self.kernels
        return tuple((call.name, kernels.utilisation(call.outputs),
                      kernels.compute_seconds(call))
                     for call in self._task_kernels(task, batch))

    @staticmethod
    def _replay_kernel_obs(rows: tuple) -> None:
        metrics = _obs.metrics()
        launches = metrics.counter("gpu.kernel.launches")
        occupancy = metrics.histogram("gpu.kernel.occupancy")
        seconds = metrics.histogram("gpu.kernel.seconds")
        for name, occ, body in rows:
            launches.inc(kernel=name)
            occupancy.observe(occ)
            seconds.observe(body, kernel=name)

    def task_seconds(self, task: str, batch: int = 0) -> float:
        """Memoized ``{inference,train,sync}_seconds`` dispatcher.

        Dispatches through the instance methods, so platform subclasses
        that override a latency model are still honoured.  The entry is
        built with collection suspended (the build's own per-kernel
        recordings happen exactly once otherwise) and the cached
        observation rows are replayed per call instead, so the metrics
        a run collects are identical on both paths.
        """
        if not _fast.enabled():
            return self._build_seconds(task, batch)
        key = ("seconds", task, batch)
        entry = self._task_cache.get(key)
        if entry is None:
            observing = _obs.enabled()
            if observing:
                _obs.disable()
            try:
                built = self._build_seconds(task, batch)
            finally:
                if observing:
                    _obs.enable()
            entry = (built, self._task_obs_rows(task, batch))
            self._task_cache[key] = entry
        if entry[1] and _obs.enabled():
            self._replay_kernel_obs(entry[1])
        return entry[0]

    def task_buckets(self, task: str, batch: int = 0
                     ) -> typing.Dict[str, float]:
        """Memoized cause-bucket dispatcher; returns a fresh copy
        (callers annotate the dict in place).  Bucket builders use
        :meth:`KernelCostModel.sequence_buckets`, which records nothing,
        so no replay is needed here."""
        if not _fast.enabled():
            return self._build_buckets(task, batch)
        key = ("buckets", task, batch)
        value = self._task_cache.get(key)
        if value is None:
            value = self._build_buckets(task, batch)
            self._task_cache[key] = value
        return dict(value)

    def launch_fraction(self, batch: int = 1) -> float:
        """Launch-overhead share of an A3C routine's kernel time
        (the Section 3.4 measurement)."""
        calls = []
        for _ in range(6):
            calls.extend(self.model.inference_kernels(1))
        calls.extend(self.model.training_kernels(batch))
        return self.kernels.launch_fraction(calls)

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine)


class A3CcuDNNPlatform(_GPUPlatformBase):
    """Directly-invoked cuDNN/cuBLAS A3C (the best GPU baseline)."""

    name = "A3C-cuDNN"


class A3CTFGPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C running its kernels on the GPU."""

    name = "A3C-TF-GPU"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown


class A3CTFCPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C computing on the host CPUs only."""

    name = "A3C-TF-CPU"

    def __init__(self, topology: NetworkTopology,
                 host: HostSpec = XEON_E5_2630_PAIR,
                 calibration: typing.Optional[GPUCalibration] = None):
        super().__init__(topology, calibration=calibration)
        self.host = host
        self.task_overhead = self.cal.tf_run_overhead

    #: Per-op executor dispatch (much cheaper than a GPU launch).
    _DISPATCH_SECONDS = 4e-6

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        throughput = self.host.peak_flops * self.cal.cpu_efficiency
        compute = sum(call.flops for call in calls) / throughput
        dispatch = len(calls) * self._DISPATCH_SECONDS
        return compute + dispatch

    def _task_obs_rows(self, task: str, batch: int) -> tuple:
        # Host execution never goes through kernel_seconds, so there are
        # no per-kernel recordings to replay.
        return ()

    def _kernel_buckets(self, calls: typing.Sequence[KernelCall]
                        ) -> typing.Dict[str, float]:
        throughput = self.host.peak_flops * self.cal.cpu_efficiency
        compute = sum(call.flops for call in calls) / throughput
        # Executor dispatch is framework time, not kernel launch.
        return {_prof.GPU_KERNEL: compute,
                _prof.GPU_FRAMEWORK: len(calls) * self._DISPATCH_SECONDS}

    def inference_seconds(self, batch: int = 1) -> float:
        # No PCIe: observations stay in host memory.
        return self.task_overhead \
            + self._kernel_time(self.model.inference_kernels(batch))

    def training_seconds(self, batch: int) -> float:
        return self.task_overhead \
            + self._kernel_time(self.model.training_kernels(batch))

    def sync_seconds(self) -> float:
        return self.task_overhead / 2 \
            + self._kernel_time(self.model.sync_kernels())

    def _host_buckets(self, calls: typing.Sequence[KernelCall],
                      overhead: float) -> typing.Dict[str, float]:
        buckets = self._kernel_buckets(calls)
        buckets[_prof.GPU_FRAMEWORK] = \
            buckets.get(_prof.GPU_FRAMEWORK, 0.0) + overhead
        return buckets

    def inference_buckets(self, batch: int = 1
                          ) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.inference_kernels(batch),
                                  self.task_overhead)

    def training_buckets(self, batch: int) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.training_kernels(batch),
                                  self.task_overhead)

    def sync_buckets(self) -> typing.Dict[str, float]:
        return self._host_buckets(self.model.sync_kernels(),
                                  self.task_overhead / 2)

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine,
                      executors=self.cal.cpu_executors)


class GPUSim:
    """Discrete-event instance: one shared device serialises tasks."""

    def __init__(self, platform: _GPUPlatformBase, engine: Engine,
                 executors: int = 1):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=executors, name="device")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def inference(self, agent_id: int, batch: int = 1):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "inference",
                                 self.platform.task_buckets("inference",
                                                            batch))
        yield from self.device.use(
            self.platform.task_seconds("inference", batch))

    def train(self, agent_id: int, batch: int):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "train",
                                 self.platform.task_buckets("train",
                                                            batch))
        yield from self.device.use(
            self.platform.task_seconds("train", batch))

    def sync(self, agent_id: int):
        del agent_id
        if _obs.enabled():
            _record_task_profile(self.platform.name, "sync",
                                 self.platform.task_buckets("sync"))
        yield from self.device.use(self.platform.task_seconds("sync"))


class GA3CTFPlatform(_GPUPlatformBase):
    """The GA3C architecture on TensorFlow.

    Agents post prediction requests into a queue; a predictor thread
    drains the queue into one batched inference on the single global
    model.  Rollouts go to a trainer queue; training batches also run on
    the device but do not block agents (Section 6).
    """

    name = "GA3C-TF"
    #: GA3C has no per-agent local model: no sync, and bootstrapping is
    #: folded into the server's batched predictions.
    needs_sync = False
    needs_bootstrap = False

    def __init__(self, *args, max_prediction_batch: int = 64,
                 training_batch_rollouts: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown
        self.max_prediction_batch = max_prediction_batch
        self.training_batch_rollouts = training_batch_rollouts

    def build_sim(self, engine: Engine) -> "GA3CSim":
        return GA3CSim(self, engine)


class GA3CSim:
    """Predictor/trainer-queue simulation of GA3C."""

    def __init__(self, platform: GA3CTFPlatform, engine: Engine):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=1, name="gpu")
        self.predict_queue = Store(engine, name="predict")
        self.train_queue = Store(engine, name="train")
        engine.process(self._predictor(), name="ga3c-predictor")
        engine.process(self._trainer(), name="ga3c-trainer")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def _predictor(self):
        platform = self.platform
        while True:
            first = yield self.predict_queue.get()
            batch = [first] + self.predict_queue.get_batch(
                platform.max_prediction_batch - 1)
            # Per-request Python-side handling (dequeue, batch assembly,
            # result scatter) serialises in the predictor thread.
            if _obs.enabled():
                buckets = platform.task_buckets("inference", len(batch))
                buckets[_prof.GPU_FRAMEWORK] = (
                    buckets.get(_prof.GPU_FRAMEWORK, 0.0)
                    + len(batch) * platform.cal.ga3c_request_overhead)
                _record_task_profile(platform.name, "predict", buckets)
            yield self.engine.timeout(
                len(batch) * platform.cal.ga3c_request_overhead)
            yield from self.device.use(
                platform.task_seconds("inference", len(batch)))
            for reply in batch:
                reply.succeed()

    def _trainer(self):
        platform = self.platform
        while True:
            first = yield self.train_queue.get()
            extra = self.train_queue.get_batch(
                platform.training_batch_rollouts - 1)
            total = int(first) + sum(int(b) for b in extra)
            if _obs.enabled():
                _record_task_profile(platform.name, "train",
                                     platform.task_buckets("train", total))
            yield from self.device.use(
                platform.task_seconds("train", total))

    # -- agent-facing interface ------------------------------------------

    def inference(self, agent_id: int, batch: int = 1):
        """Submit one state and wait for the batched prediction."""
        del agent_id, batch
        reply = self.engine.event()
        self.predict_queue.put(reply)
        yield reply

    def train(self, agent_id: int, batch: int):
        """Queue a rollout for the trainer; does not block the agent."""
        del agent_id
        self.train_queue.put(batch)
        yield self.engine.timeout(0.0)

    def sync(self, agent_id: int):
        """GA3C has no local models, hence no parameter sync."""
        del agent_id
        yield self.engine.timeout(0.0)
