"""The four software baseline platforms (paper Section 5.1).

Each platform exposes the same simulation interface as
:class:`repro.fpga.platform.FPGASim` — process bodies for ``inference``,
``train`` and ``sync`` — so the throughput experiment drives every platform
identically.

* :class:`A3CcuDNNPlatform` — direct cuDNN/cuBLAS invocation; one shared
  GPU serialises all agents' tasks.
* :class:`A3CTFGPUPlatform` — same structure plus TensorFlow's per-run
  overhead and kernel slowdown.
* :class:`GA3CTFPlatform` — the GA3C architecture: agents submit states to
  a predictor queue served in batches; training batches run from a trainer
  queue and do *not* block the submitting agent.
* :class:`A3CTFCPUPlatform` — TensorFlow on the host CPUs.
"""

from __future__ import annotations

import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.cudnn import CuDNNModel
from repro.gpu.kernel import KernelCall, KernelCostModel
from repro.gpu.specs import P100, XEON_E5_2630_PAIR, GPUSpec, HostSpec
from repro.nn.network import NetworkTopology
from repro.sim import Engine, Resource, Store


class _GPUPlatformBase:
    """Shared machinery: kernel model + analytic task latencies."""

    name = "gpu-base"

    def __init__(self, topology: NetworkTopology,
                 gpu: GPUSpec = P100,
                 calibration: typing.Optional[GPUCalibration] = None):
        self.topology = topology
        self.cal = calibration or GPUCalibration()
        self.kernels = KernelCostModel(gpu, self.cal)
        self.model = CuDNNModel(topology)

    # Per-platform multipliers (TensorFlow adds overheads).
    task_overhead = 0.0
    kernel_slowdown = 1.0

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        return self.kernels.sequence_seconds(calls) * self.kernel_slowdown

    def inference_seconds(self, batch: int = 1) -> float:
        """End-to-end inference latency: DMA in, kernels, DMA out."""
        return (self.task_overhead
                + self.kernels.pcie_seconds(self.model.input_bytes(batch))
                + self._kernel_time(self.model.inference_kernels(batch))
                + self.kernels.pcie_seconds(self.model.output_bytes(batch)))

    def training_seconds(self, batch: int) -> float:
        """Training-task latency (head gradients arrive over PCIe)."""
        last = self.topology.layers[-1]
        grad_bytes = batch * last.num_outputs * 4
        return (self.task_overhead
                + self.kernels.pcie_seconds(grad_bytes)
                + self._kernel_time(self.model.training_kernels(batch)))

    def sync_seconds(self) -> float:
        """Local-model refresh from the global model (device copy)."""
        return self.task_overhead \
            + self._kernel_time(self.model.sync_kernels())

    def launch_fraction(self, batch: int = 1) -> float:
        """Launch-overhead share of an A3C routine's kernel time
        (the Section 3.4 measurement)."""
        calls = []
        for _ in range(6):
            calls.extend(self.model.inference_kernels(1))
        calls.extend(self.model.training_kernels(batch))
        return self.kernels.launch_fraction(calls)

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine)


class A3CcuDNNPlatform(_GPUPlatformBase):
    """Directly-invoked cuDNN/cuBLAS A3C (the best GPU baseline)."""

    name = "A3C-cuDNN"


class A3CTFGPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C running its kernels on the GPU."""

    name = "A3C-TF-GPU"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown


class A3CTFCPUPlatform(_GPUPlatformBase):
    """TensorFlow A3C computing on the host CPUs only."""

    name = "A3C-TF-CPU"

    def __init__(self, topology: NetworkTopology,
                 host: HostSpec = XEON_E5_2630_PAIR,
                 calibration: typing.Optional[GPUCalibration] = None):
        super().__init__(topology, calibration=calibration)
        self.host = host
        self.task_overhead = self.cal.tf_run_overhead

    def _kernel_time(self, calls: typing.Sequence[KernelCall]) -> float:
        throughput = self.host.peak_flops * self.cal.cpu_efficiency
        compute = sum(call.flops for call in calls) / throughput
        # Per-op executor dispatch (much cheaper than a GPU launch).
        dispatch = len(calls) * 4e-6
        return compute + dispatch

    def inference_seconds(self, batch: int = 1) -> float:
        # No PCIe: observations stay in host memory.
        return self.task_overhead \
            + self._kernel_time(self.model.inference_kernels(batch))

    def training_seconds(self, batch: int) -> float:
        return self.task_overhead \
            + self._kernel_time(self.model.training_kernels(batch))

    def sync_seconds(self) -> float:
        return self.task_overhead / 2 \
            + self._kernel_time(self.model.sync_kernels())

    def build_sim(self, engine: Engine) -> "GPUSim":
        return GPUSim(self, engine,
                      executors=self.cal.cpu_executors)


class GPUSim:
    """Discrete-event instance: one shared device serialises tasks."""

    def __init__(self, platform: _GPUPlatformBase, engine: Engine,
                 executors: int = 1):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=executors, name="device")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def inference(self, agent_id: int, batch: int = 1):
        del agent_id
        yield from self.device.use(self.platform.inference_seconds(batch))

    def train(self, agent_id: int, batch: int):
        del agent_id
        yield from self.device.use(self.platform.training_seconds(batch))

    def sync(self, agent_id: int):
        del agent_id
        yield from self.device.use(self.platform.sync_seconds())


class GA3CTFPlatform(_GPUPlatformBase):
    """The GA3C architecture on TensorFlow.

    Agents post prediction requests into a queue; a predictor thread
    drains the queue into one batched inference on the single global
    model.  Rollouts go to a trainer queue; training batches also run on
    the device but do not block agents (Section 6).
    """

    name = "GA3C-TF"
    #: GA3C has no per-agent local model: no sync, and bootstrapping is
    #: folded into the server's batched predictions.
    needs_sync = False
    needs_bootstrap = False

    def __init__(self, *args, max_prediction_batch: int = 64,
                 training_batch_rollouts: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_overhead = self.cal.tf_run_overhead
        self.kernel_slowdown = self.cal.tf_kernel_slowdown
        self.max_prediction_batch = max_prediction_batch
        self.training_batch_rollouts = training_batch_rollouts

    def build_sim(self, engine: Engine) -> "GA3CSim":
        return GA3CSim(self, engine)


class GA3CSim:
    """Predictor/trainer-queue simulation of GA3C."""

    def __init__(self, platform: GA3CTFPlatform, engine: Engine):
        self.platform = platform
        self.engine = engine
        self.device = Resource(engine, capacity=1, name="gpu")
        self.predict_queue = Store(engine, name="predict")
        self.train_queue = Store(engine, name="train")
        engine.process(self._predictor(), name="ga3c-predictor")
        engine.process(self._trainer(), name="ga3c-trainer")

    def utilisation(self) -> float:
        """Device occupancy (drives the power model)."""
        return self.device.utilisation()

    def _predictor(self):
        platform = self.platform
        while True:
            first = yield self.predict_queue.get()
            batch = [first] + self.predict_queue.get_batch(
                platform.max_prediction_batch - 1)
            # Per-request Python-side handling (dequeue, batch assembly,
            # result scatter) serialises in the predictor thread.
            yield self.engine.timeout(
                len(batch) * platform.cal.ga3c_request_overhead)
            yield from self.device.use(
                platform.inference_seconds(len(batch)))
            for reply in batch:
                reply.succeed()

    def _trainer(self):
        platform = self.platform
        while True:
            first = yield self.train_queue.get()
            extra = self.train_queue.get_batch(
                platform.training_batch_rollouts - 1)
            total = int(first) + sum(int(b) for b in extra)
            yield from self.device.use(platform.training_seconds(total))

    # -- agent-facing interface ------------------------------------------

    def inference(self, agent_id: int, batch: int = 1):
        """Submit one state and wait for the batched prediction."""
        del agent_id, batch
        reply = self.engine.event()
        self.predict_queue.put(reply)
        yield reply

    def train(self, agent_id: int, batch: int):
        """Queue a rollout for the trainer; does not block the agent."""
        del agent_id
        self.train_queue.put(batch)
        yield self.engine.timeout(0.0)

    def sync(self, agent_id: int):
        """GA3C has no local models, hence no parameter sync."""
        del agent_id
        yield self.engine.timeout(0.0)
