"""cuDNN/cuBLAS-style kernel sequences for each A3C task.

Builds :class:`~repro.gpu.kernel.KernelCall` lists from the network
topology (Table 1): one kernel per layer per stage, matching how the
paper's A3C-cuDNN implementation invokes cuDNN primitives (with cuBLAS for
the FC forward passes) — so kernel-launch counts, and therefore the
Section 3.4 launch-overhead fraction, are structural rather than assumed.
"""

from __future__ import annotations

import typing

from repro.gpu.kernel import KernelCall
from repro.nn.network import WORD_BYTES, LayerSpec, NetworkTopology


def _fmap_bytes(spec: LayerSpec, batch: int, output: bool) -> float:
    count = spec.num_outputs if output else spec.num_inputs
    return batch * count * WORD_BYTES


class CuDNNModel:
    """Kernel sequences for inference, training, update, and sync."""

    def __init__(self, topology: NetworkTopology):
        self.topology = topology

    def inference_kernels(self, batch: int = 1
                          ) -> typing.List[KernelCall]:
        """FW kernels: per layer, the conv/GEMM kernel plus the
        bias + activation kernel (cuDNN launches them separately)."""
        calls = []
        for spec in self.topology.layers:
            calls.append(KernelCall(
                name=f"fw:{spec.name}",
                flops=2.0 * spec.macs_fw(batch),
                bytes=spec.num_params * WORD_BYTES
                + _fmap_bytes(spec, batch, output=False)
                + _fmap_bytes(spec, batch, output=True),
                outputs=batch * spec.num_outputs))
            calls.append(KernelCall(
                name=f"fw-act:{spec.name}",
                flops=2.0 * batch * spec.num_outputs,
                bytes=2.0 * _fmap_bytes(spec, batch, output=True),
                outputs=batch * spec.num_outputs))
        return calls

    def backward_kernels(self, batch: int) -> typing.List[KernelCall]:
        """BW (data-gradient) kernels; the first layer needs none."""
        calls = []
        for spec in self.topology.layers[1:]:
            calls.append(KernelCall(
                name=f"bw:{spec.name}",
                flops=2.0 * spec.macs_bw(batch),
                bytes=spec.num_params * WORD_BYTES
                + _fmap_bytes(spec, batch, output=True)
                + _fmap_bytes(spec, batch, output=False),
                outputs=batch * spec.num_inputs))
        return calls

    def grad_kernels(self, batch: int) -> typing.List[KernelCall]:
        """GC kernels: weight gradients plus the bias-gradient reduction,
        per layer."""
        calls = []
        for spec in self.topology.layers:
            calls.append(KernelCall(
                name=f"gc:{spec.name}",
                flops=2.0 * spec.macs_gc(batch),
                bytes=spec.num_params * WORD_BYTES
                + _fmap_bytes(spec, batch, output=False)
                + _fmap_bytes(spec, batch, output=True),
                outputs=spec.num_params))
            calls.append(KernelCall(
                name=f"gc-bias:{spec.name}",
                flops=float(batch * spec.num_outputs),
                bytes=_fmap_bytes(spec, batch, output=True),
                outputs=spec.out_channels))
        return calls

    def update_kernels(self) -> typing.List[KernelCall]:
        """RMSProp elementwise kernels: g update then theta update."""
        params = self.topology.num_params
        param_bytes = params * WORD_BYTES
        return [
            KernelCall(name="rmsprop:g", flops=3.0 * params,
                       bytes=3.0 * param_bytes, outputs=params),
            KernelCall(name="rmsprop:theta", flops=4.0 * params,
                       bytes=4.0 * param_bytes, outputs=params),
        ]

    def training_kernels(self, batch: int) -> typing.List[KernelCall]:
        """The full training task: FW (recomputed, as the software
        baselines do) + BW + GC + RMSProp."""
        return (self.inference_kernels(batch)
                + self.backward_kernels(batch)
                + self.grad_kernels(batch)
                + self.update_kernels())

    def sync_kernels(self) -> typing.List[KernelCall]:
        """Global-to-local parameter copy (device-to-device)."""
        param_bytes = self.topology.num_params * WORD_BYTES
        return [KernelCall(name="sync:copy", flops=0.0,
                           bytes=2.0 * param_bytes,
                           outputs=self.topology.num_params)]

    def input_bytes(self, batch: int = 1) -> float:
        """Host-to-device bytes per inference request."""
        return batch * self.topology.input_bytes

    def output_bytes(self, batch: int = 1) -> float:
        """Device-to-host bytes per inference reply (logits + value)."""
        last = self.topology.layers[-1]
        return batch * last.num_outputs * WORD_BYTES
