"""The GPU parameter-layout experiment (paper Section 5.5, Figure 11).

The authors replicate FA3C's layout management in an OpenCL GPU A3C and
measure the fully-connected layers' compute time under three layout
policies:

* both tasks use the **FW** layout — training's BW pass reads the
  parameters strided (uncoalesced) and slows down;
* both tasks use the **BW** layout — inference reads strided instead
  (41.7 % slower on the FC layers);
* **each task uses its matching layout** — fastest compute, but the GPU
  needs an extra transformation kernel whose cost offsets the gain
  (on FA3C the TLU hides it).

A GPU kernel reading a matrix along its non-contiguous axis loses
coalescing: each 32-thread warp touches 32 cache lines instead of ~4.
We model that as a bandwidth de-rating factor
(:attr:`~repro.gpu.calibration.GPUCalibration.mismatched_layout_slowdown`).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.gpu.calibration import GPUCalibration
from repro.gpu.cudnn import CuDNNModel
from repro.gpu.kernel import KernelCall, KernelCostModel
from repro.gpu.specs import P100, GPUSpec
from repro.nn.network import NetworkTopology


@dataclasses.dataclass
class LayoutPolicyResult:
    """FC-layer compute times under one layout policy (Figure 11 bars)."""

    policy: str
    inference_seconds: float
    training_seconds: float
    transform_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (self.inference_seconds + self.training_seconds
                + self.transform_seconds)


class GPULayoutExperiment:
    """Reproduces Figure 11: FC-layer time under three layout policies."""

    def __init__(self, topology: NetworkTopology, gpu: GPUSpec = P100,
                 calibration: typing.Optional[GPUCalibration] = None):
        self.topology = topology
        self.cal = calibration or GPUCalibration()
        self.kernels = KernelCostModel(gpu, self.cal)
        self.model = CuDNNModel(topology)
        # The experiment uses the authors' own OpenCL implementation,
        # tuned to within 12 % of cuDNN (Section 5.5).
        self.opencl_factor = self.cal.opencl_slowdown

    def _fc_layers(self):
        return [spec for spec in self.topology.layers
                if spec.kind == "dense"]

    def _fc_time(self, calls_builder, batch: int,
                 mismatched: bool) -> float:
        """Sum FC-layer kernel times, de-rating bandwidth when the layout
        does not match the access pattern."""
        total = 0.0
        fc_names = {spec.name for spec in self._fc_layers()}
        for call in calls_builder(batch):
            layer = call.name.split(":", 1)[1]
            if layer not in fc_names:
                continue
            seconds = self.kernels.kernel_seconds(call) \
                * self.opencl_factor
            if mismatched:
                body = seconds - self.cal.launch_overhead
                seconds = self.cal.launch_overhead \
                    + body * self.cal.mismatched_layout_slowdown
            total += seconds
        return total

    def _training_calls(self, batch: int) -> typing.List[KernelCall]:
        return (self.model.backward_kernels(batch)
                + self.model.grad_kernels(batch))

    def transform_kernel_seconds(self) -> float:
        """The extra layout-transformation kernel (transpose of the FC
        parameters) the matched policy needs per parameter update."""
        fc_bytes = sum(spec.num_params * 4 for spec in self._fc_layers())
        call = KernelCall(name="transform:fc", flops=0.0,
                          bytes=2.0 * fc_bytes,
                          outputs=sum(spec.num_params
                                      for spec in self._fc_layers()))
        # A transpose is bandwidth-bound and half-uncoalesced.
        body = self.kernels.compute_seconds(call) \
            * (1.0 + self.cal.mismatched_layout_slowdown) / 2.0
        return self.cal.launch_overhead + body

    def run(self, t_max: int = 5) -> typing.List[LayoutPolicyResult]:
        """The three Figure 11 policies (per A3C routine: 6 inferences +
        1 training task, FC layers only)."""
        inf = lambda mism: 6 * self._fc_time(  # noqa: E731
            self.model.inference_kernels, 1, mism)
        train = lambda mism: self._fc_time(  # noqa: E731
            self._training_calls, t_max, mism)
        return [
            LayoutPolicyResult("FW layout for both",
                               inference_seconds=inf(False),
                               training_seconds=train(True)),
            LayoutPolicyResult("BW layout for both",
                               inference_seconds=inf(True),
                               training_seconds=train(False)),
            LayoutPolicyResult("matching layout + transform",
                               inference_seconds=inf(False),
                               training_seconds=train(False),
                               transform_seconds=
                               self.transform_kernel_seconds()),
        ]

    def inference_slowdown_with_bw_layout(self) -> float:
        """The paper's 41.7 % figure: inference FC time under the BW
        layout relative to the FW layout."""
        fast = self._fc_time(self.model.inference_kernels, 1, False)
        slow = self._fc_time(self.model.inference_kernels, 1, True)
        return slow / fast - 1.0
