"""Calibration constants of the GPU/CPU cost models, with provenance.

The paper's testbed (P100 + cuDNN) is not available in this environment,
so the GPU model's free constants are pinned against the quantitative
anchors the paper itself reports:

* kernel launch overhead accounts for **more than 38 %** of overall GPU
  kernel execution time in A3C (Section 3.4, dummy-kernel measurement);
* the authors' hand-tuned OpenCL A3C is **within 12 %** of A3C-cuDNN
  (Section 5.5);
* an inference task using the mismatched BW parameter layout is **41.7 %
  slower** on the FC layers (Section 5.5 / Figure 11);
* FA3C's best IPS is **27.9 % higher** than A3C-cuDNN's best
  (Section 5.2), and FA3C exceeds **2,550 IPS** at n = 16 — anchoring
  A3C-cuDNN's saturated throughput near 2,000 IPS;
* platform ordering in Figure 8:
  A3C-cuDNN > GA3C-TF > A3C-TF-GPU > A3C-TF-CPU.

Changing a constant here moves every benchmark consistently; nothing else
in :mod:`repro.gpu` hard-codes timing.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GPUCalibration:
    """Free constants of the GPU kernel and framework models."""

    #: Host-side cost to launch one CUDA kernel and retire it through the
    #: stream (driver + dispatch + completion), seconds.  Sized so that
    #: launch time is ~38-40 % of A3C kernel execution time (Section 3.4).
    launch_overhead: float = 13e-6

    #: Fraction of peak FLOPs a fully occupied small DNN kernel sustains
    #: (instruction mix, tensor shapes that do not tile perfectly).
    kernel_efficiency: float = 0.12

    #: Fraction of peak HBM2 bandwidth sustained by streaming kernels.
    memory_efficiency: float = 0.60

    #: CUDA threads one output element keeps busy, including the
    #: reduction-tree helpers cuDNN/cuBLAS spawn per output.
    threads_per_output: float = 4.0

    #: Minimum utilisation floor: even a one-thread kernel keeps a warp's
    #: lanes partially busy.
    min_utilisation: float = 0.008

    #: Fixed PCIe DMA latency per transfer (descriptor + doorbell).
    pcie_latency: float = 8e-6

    #: TensorFlow per-``session.run`` overhead (graph dispatch, feed/fetch
    #: marshalling) — why both TF baselines trail A3C-cuDNN.
    tf_run_overhead: float = 350e-6

    #: Extra per-kernel inefficiency under TF relative to raw cuDNN.
    tf_kernel_slowdown: float = 1.25

    #: Effective fp32 throughput of the TF CPU executor for these layer
    #: sizes (fraction of host peak; small ops parallelise poorly).
    cpu_efficiency: float = 0.02

    #: Concurrent TF CPU executors (inter-op parallelism effectively
    #: serialises around the shared thread pool for this model size).
    cpu_executors: int = 1

    #: Per-request handling cost of the GA3C predictor/trainer threads
    #: (Python queue dequeue, state deserialisation, batch assembly) —
    #: the dominant GA3C-side overhead its authors also report.
    ga3c_request_overhead: float = 0.5e-3

    #: The authors' OpenCL implementation runs within this factor of
    #: cuDNN (Section 5.5).
    opencl_slowdown: float = 1.12

    #: Throughput penalty of reading FC parameters with the mismatched
    #: (BW) layout: strided, uncoalesced accesses.  Tuned to the paper's
    #: 41.7 % inference slowdown.
    mismatched_layout_slowdown: float = 1.56

    #: Host environment + preprocessing + softmax time per agent step
    #: (ALE frame x 4, grayscale/resize, action sampling) on the Table 5
    #: Xeons.
    host_step_time: float = 1.0e-3

    #: Host-side objective/gradient computation before a training task.
    host_train_prep_time: float = 0.15e-3

    #: Aggregate de-flickered frame rate of the structure-of-arrays
    #: batched environment engine (``repro.ale.vec``) at rollout widths,
    #: frames/second across the whole batch.  Rounded from the B = 64
    #: sweep point of ``benchmarks/bench_env_step.py`` on the reference
    #: container; refresh it deliberately from the bench, never measure
    #: it live, so the modelled occupancy curves stay deterministic.
    batched_env_fps: float = 5000.0
