"""Analytic + discrete-event models of the paper's GPU/CPU baselines.

The paper compares FA3C against four software platforms on a host with two
Xeon E5-2630 CPUs and an NVIDIA Tesla P100 (Table 5):

* **A3C-cuDNN** — hand-written cuDNN/cuBLAS A3C (the strongest GPU
  baseline);
* **A3C-TF-GPU** — TensorFlow A3C with GPU kernels;
* **GA3C-TF** — the GA3C algorithm (batched single-model) on TensorFlow;
* **A3C-TF-CPU** — TensorFlow A3C on the CPUs only.

The models capture exactly the three GPU bottlenecks Section 3 identifies:
small-batch occupancy, kernel-launch overhead, and the fixed memory
hierarchy; calibration constants are collected in
:mod:`repro.gpu.calibration` with their provenance.
"""

from repro.gpu.calibration import GPUCalibration
from repro.gpu.cudnn import CuDNNModel, KernelCall
from repro.gpu.kernel import KernelCostModel
from repro.gpu.layout_experiment import GPULayoutExperiment
from repro.gpu.platform import (
    A3CcuDNNPlatform,
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    GA3CTFPlatform,
)
from repro.gpu.specs import P100, XEON_E5_2630_PAIR, GPUSpec, HostSpec

__all__ = [
    "A3CTFCPUPlatform",
    "A3CTFGPUPlatform",
    "A3CcuDNNPlatform",
    "CuDNNModel",
    "GA3CTFPlatform",
    "GPUCalibration",
    "GPULayoutExperiment",
    "GPUSpec",
    "HostSpec",
    "KernelCall",
    "KernelCostModel",
    "P100",
    "XEON_E5_2630_PAIR",
]
