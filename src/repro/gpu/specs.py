"""Hardware specifications of the paper's evaluation platform (Table 5)."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """A GPU's headline numbers."""

    name: str
    peak_flops: float           # single-precision FLOP/s
    mem_bandwidth: float        # bytes/s (HBM2 for the P100)
    sm_count: int
    threads_per_sm: int
    pcie_bandwidth: float       # bytes/s effective host link
    core_clock_hz: float

    @property
    def max_resident_threads(self) -> int:
        return self.sm_count * self.threads_per_sm


#: NVIDIA Tesla P100 (16 nm, HBM2, PCIe 3.0 x16) — paper Table 5.
P100 = GPUSpec(name="Tesla P100", peak_flops=9.3e12,
               mem_bandwidth=732e9, sm_count=56, threads_per_sm=2048,
               pcie_bandwidth=11e9, core_clock_hz=1.328e9)


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """The host CPUs (environment simulation + TF-CPU baseline)."""

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    flops_per_cycle_per_core: int   # AVX2 fp32 FMA width x 2

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_flops(self) -> float:
        return (self.total_cores * self.clock_hz *
                self.flops_per_cycle_per_core)


#: 2x Xeon E5-2630 v4 (10 cores each, 2.2 GHz) — paper Table 5.
XEON_E5_2630_PAIR = HostSpec(name="2x Xeon E5-2630", sockets=2,
                             cores_per_socket=10, clock_hz=2.2e9,
                             flops_per_cycle_per_core=32)
